(** Model-generic exhaustive exploration engine. See the interface for
    the design, the partial-order-reduction soundness argument and the
    parallel-search determinism argument. *)

(* Bump on any change to exploration semantics: the verification cache
   keys every stored result on this string. vrm-engine/6: thread-
   symmetry reduction (orbit-canonical state keys, context-aware
   MODEL.key) plus seen-set contention / allocation counters (the stats
   payload stored in cache entries changed shape again).
   vrm-engine/5: footprint labels on all four models, task-based
   frontier scheduler with tasks_spawned/tasks_stolen stats.
   vrm-engine/4: memoized promise certification with
   cert_calls/cert_hits stats. vrm-engine/3: hashed state interning,
   shared work-stealing parallel search, sleep-set POR. *)
let version = "vrm-engine/6"

type stats = {
  visited : int;
  dedup_hits : int;
  transitions : int;
  max_depth : int;
  outcomes : int;
  por_pruned : int;
  tasks_spawned : int;
  tasks_stolen : int;
  shared_hits : int;
  cert_calls : int;
  cert_hits : int;
  sym_groups : int;
  sym_collapsed : int;
  seen_stripes : int;
  stripe_occupancy : int;
  lock_waits : int;
  minor_words : int;
  wall_s : float;
  jobs : int;
  budget_hit : bool;
}

let zero_stats =
  { visited = 0;
    dedup_hits = 0;
    transitions = 0;
    max_depth = 0;
    outcomes = 0;
    por_pruned = 0;
    tasks_spawned = 0;
    tasks_stolen = 0;
    shared_hits = 0;
    cert_calls = 0;
    cert_hits = 0;
    sym_groups = 0;
    sym_collapsed = 0;
    seen_stripes = 0;
    stripe_occupancy = 0;
    lock_waits = 0;
    minor_words = 0;
    wall_s = 0.;
    jobs = 1;
    budget_hit = false }

let add_stats a b =
  { visited = a.visited + b.visited;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    transitions = a.transitions + b.transitions;
    max_depth = max a.max_depth b.max_depth;
    outcomes = a.outcomes + b.outcomes;
    por_pruned = a.por_pruned + b.por_pruned;
    tasks_spawned = a.tasks_spawned + b.tasks_spawned;
    tasks_stolen = a.tasks_stolen + b.tasks_stolen;
    shared_hits = a.shared_hits + b.shared_hits;
    cert_calls = a.cert_calls + b.cert_calls;
    cert_hits = a.cert_hits + b.cert_hits;
    sym_groups = max a.sym_groups b.sym_groups;
    sym_collapsed = a.sym_collapsed + b.sym_collapsed;
    seen_stripes = max a.seen_stripes b.seen_stripes;
    stripe_occupancy = max a.stripe_occupancy b.stripe_occupancy;
    lock_waits = a.lock_waits + b.lock_waits;
    minor_words = a.minor_words + b.minor_words;
    wall_s = a.wall_s +. b.wall_s;
    jobs = max a.jobs b.jobs;
    budget_hit = a.budget_hit || b.budget_hit }

let pp_stats fmt s =
  Format.fprintf fmt
    "states=%d dedup=%d transitions=%d depth=%d outcomes=%d wall=%.2fms \
     jobs=%d%s%s%s%s%s%s%s%s%s%s"
    s.visited s.dedup_hits s.transitions s.max_depth s.outcomes
    (s.wall_s *. 1000.) s.jobs
    (if s.por_pruned > 0 then Printf.sprintf " por=%d" s.por_pruned else "")
    (if s.sym_groups > 0 then
       Printf.sprintf " sym=%d/%d" s.sym_groups s.sym_collapsed
     else "")
    (if s.tasks_spawned > 0 then Printf.sprintf " tasks=%d" s.tasks_spawned
     else "")
    (if s.tasks_stolen > 0 then Printf.sprintf " stolen=%d" s.tasks_stolen
     else "")
    (if s.shared_hits > 0 then Printf.sprintf " shared=%d" s.shared_hits
     else "")
    (if s.cert_calls > 0 then
       Printf.sprintf " cert=%d/%d" s.cert_hits s.cert_calls
     else "")
    (if s.jobs > 1 && s.seen_stripes > 0 then
       Printf.sprintf " stripes=%d/occ=%d" s.seen_stripes s.stripe_occupancy
     else "")
    (if s.lock_waits > 0 then Printf.sprintf " lockwait=%d" s.lock_waits
     else "")
    (if s.minor_words > 0 then
       Printf.sprintf " alloc=%.1fMw" (float_of_int s.minor_words /. 1e6)
     else "")
    (if s.budget_hit then " [budget hit]" else "")

type ('state, 'label) step =
  | Step of 'label * 'state
  | Emit of Behavior.outcome

type ('state, 'label) expansion =
  | Terminal of Behavior.outcome option
  | Steps of ('state, 'label) step Seq.t

module type MODEL = sig
  type ctx
  type state
  type label

  val key : ctx -> state -> Statekey.t
  val independent : (ctx -> label -> label -> bool) option
  val ample : (ctx -> label -> bool) option
  val sleepable : ctx -> label -> bool
  val expand : ctx -> labels:bool -> state -> (state, label) expansion
end

module Make (M : MODEL) = struct
  type result = {
    behaviors : Behavior.t;
    witnesses : (Behavior.outcome * M.label list) list;
    stats : stats;
  }

  (* Mutable accumulator of one search (one domain's worth of work). *)
  type acc = {
    mutable behaviors : Behavior.t;
    wits : (Behavior.outcome, M.label list) Hashtbl.t;
    mutable visited : int;
    mutable dedup : int;
    mutable trans : int;
    mutable maxd : int;
    mutable pruned : int;
    mutable spawned : int;
    mutable stolen : int;
    mutable shared : int;
    mutable lockw : int;
    mutable mwords : int;
    mutable budget_hit : bool;
  }

  let new_acc () =
    { behaviors = Behavior.empty;
      wits = Hashtbl.create 64;
      visited = 0;
      dedup = 0;
      trans = 0;
      maxd = 0;
      pruned = 0;
      spawned = 0;
      stolen = 0;
      shared = 0;
      lockw = 0;
      mwords = 0;
      budget_hit = false }

  let record acc ~witnesses o path =
    if witnesses && not (Behavior.mem o acc.behaviors) then
      Hashtbl.replace acc.wits o (List.rev path);
    acc.behaviors <- Behavior.add o acc.behaviors

  exception Budget

  (* ---- sleep sets ----------------------------------------------- *)
  (* A sleep set is the list of labels whose transitions need not be
     explored from a state because an equivalent interleaving is covered
     through an already-explored sibling. Labels identify transitions
     structurally (polymorphic equality); the POR-enabled models keep
     them small (tid + access kind). *)

  let mem_lbl l zs = List.exists (fun z -> z = l) zs
  let subset a b = List.for_all (fun x -> mem_lbl x b) a
  let inter a b = List.filter (fun x -> mem_lbl x b) a

  (* Seen-table entry: the domain that inserted it (for [shared_hits])
     and the sleep set the state was explored under. A revisit may be
     deduplicated only when the stored sleep set is a subset of the
     incoming one — the prior exploration then covered at least as many
     transitions. Otherwise the state is re-explored under the
     intersection (written back first), which shrinks monotonically, so
     re-exploration terminates. Without POR the stored sleep set is
     always [[]] and every revisit deduplicates, exactly as before. *)
  type seen_v = int * M.label list

  let dummy_seen : seen_v = (0, [])

  (* Expand one state and dispatch its successors through [child]
     (direct recursion when sequential, deque pushes when parallel).
     Without an [independent] oracle the transition sequence stays lazy:
     the engine forces the next transition only after [child] returns,
     preserving the exception-surfacing and budget-laziness contract.
     With an oracle the steps are materialized (the POR models enumerate
     transitions cheaply and totally) so sibling labels can feed sleep
     sets; [Emit]s are always recorded, never pruned. *)
  let expand_state ~ctx ~witnesses ~labels ~oracle ~ample acc st path depth
      sleep ~child =
    match M.expand ctx ~labels st with
    | Terminal (Some o) -> record acc ~witnesses o path
    | Terminal None -> ()
    | Steps steps -> (
        match oracle with
        | None ->
            Seq.iter
              (fun s ->
                acc.trans <- acc.trans + 1;
                match s with
                | Emit o -> record acc ~witnesses o path
                | Step (lbl, st') ->
                    child st'
                      (if witnesses then lbl :: path else path)
                      (depth + 1) [])
              steps
        | Some indep -> (
            let items = List.of_seq steps in
            List.iter
              (function
                | Emit o ->
                    acc.trans <- acc.trans + 1;
                    record acc ~witnesses o path
                | Step _ -> ())
              items;
            let steps =
              List.filter_map
                (function Step (l, s) -> Some (l, s) | Emit _ -> None)
                items
            in
            (* Singleton-ample reduction: an [ample] transition is
               invisible, its thread's unique transition, and commutes
               with every other thread's — so exploring it alone covers
               every interleaving of the siblings (see the interface for
               the soundness argument). *)
            let amp =
              match ample with
              | Some ok ->
                  List.find_opt
                    (fun (l, _) -> ok ctx l && not (mem_lbl l sleep))
                    steps
              | None -> None
            in
            match amp with
            | Some (l, st') ->
                acc.trans <- acc.trans + 1;
                acc.pruned <- acc.pruned + (List.length steps - 1);
                child st'
                  (if witnesses then l :: path else path)
                  (depth + 1)
                  (List.filter (fun z -> indep ctx z l) sleep)
            | None ->
                (* Sleep-set exploration: sibling [i]'s subtree may skip
                   any earlier sibling [j < i] independent of [i] — the
                   [j]-then-[i] interleavings are covered inside [j]'s
                   subtree, which explored [i] (not sleeping there). *)
                let sleeping = ref sleep in
                List.iter
                  (fun (l, st') ->
                    if mem_lbl l !sleeping then
                      acc.pruned <- acc.pruned + 1
                    else begin
                      acc.trans <- acc.trans + 1;
                      let child_sleep =
                        List.filter (fun z -> indep ctx z l) !sleeping
                      in
                      child st'
                        (if witnesses then l :: path else path)
                        (depth + 1) child_sleep;
                      (* Labels of symmetric threads never enter sleep
                         sets: a sleep set is history, and under orbit
                         canonicalization a revisit may arrive with its
                         grouped threads permuted, where a literal label
                         comparison against stored history would be
                         wrong. Keeping only permutation-invariant
                         labels makes the subset/intersection checks at
                         dedup exact; see {!MODEL.sleepable}. *)
                      if M.sleepable ctx l then sleeping := l :: !sleeping
                    end)
                  steps))

  (* Depth-first search from each root, with a private seen-set. Roots
     carry the (reversed) label path and depth that led to them, so a
     parallel bucket reports witnesses with their full schedule. *)
  let dfs ~ctx ~witnesses ~max_states ~deadline ~oracle ~ample ~seen acc
      roots =
    let labels = witnesses || Option.is_some oracle in
    let check_deadline () =
      match deadline with
      | Some d when Unix.gettimeofday () > d ->
          acc.budget_hit <- true;
          raise Budget
      | _ -> ()
    in
    let rec go st path depth sleep =
      let key = M.key ctx st in
      match Statekey.Table.find_or_add seen key (0, sleep) with
      | `Found (_, old_sleep) ->
          if
            (match oracle with None -> true | Some _ -> false)
            || subset old_sleep sleep
          then acc.dedup <- acc.dedup + 1
          else begin
            (* weaker sleep set: re-explore under the intersection *)
            let z = inter old_sleep sleep in
            Statekey.Table.update seen key (0, z);
            check_deadline ();
            expand_state ~ctx ~witnesses ~labels ~oracle ~ample acc st path
              depth z ~child:go
          end
      | `Added ->
          acc.visited <- acc.visited + 1;
          if depth > acc.maxd then acc.maxd <- depth;
          (match max_states with
          | Some b when acc.visited > b ->
              acc.budget_hit <- true;
              raise Budget
          | _ -> ());
          check_deadline ();
          expand_state ~ctx ~witnesses ~labels ~oracle ~ample acc st path
            depth sleep ~child:go
    in
    try List.iter (fun (st, path, depth) -> go st path depth []) roots
    with Budget -> ()

  let finish ~t0 ~jobs accs =
    let behaviors =
      List.fold_left
        (fun b (a : acc) -> Behavior.union b a.behaviors)
        Behavior.empty accs
    in
    (* first recorded witness per outcome, earliest accumulator wins *)
    let wits = Hashtbl.create 64 in
    List.iter
      (fun (a : acc) ->
        Hashtbl.iter
          (fun o p -> if not (Hashtbl.mem wits o) then Hashtbl.add wits o p)
          a.wits)
      accs;
    let stats =
      List.fold_left
        (fun (s : stats) (a : acc) ->
          { s with
            visited = s.visited + a.visited;
            dedup_hits = s.dedup_hits + a.dedup;
            transitions = s.transitions + a.trans;
            max_depth = max s.max_depth a.maxd;
            por_pruned = s.por_pruned + a.pruned;
            tasks_spawned = s.tasks_spawned + a.spawned;
            tasks_stolen = s.tasks_stolen + a.stolen;
            shared_hits = s.shared_hits + a.shared;
            lock_waits = s.lock_waits + a.lockw;
            minor_words = s.minor_words + a.mwords;
            budget_hit = s.budget_hit || a.budget_hit })
        zero_stats accs
    in
    { behaviors;
      witnesses = Hashtbl.fold (fun o p l -> (o, p) :: l) wits [];
      stats =
        { stats with
          outcomes = Behavior.cardinal behaviors;
          wall_s = Unix.gettimeofday () -. t0;
          jobs } }

  (* ---- task-based frontier scheduler ---------------------------- *)
  (* A frame is one state awaiting expansion, with the (reversed) label
     path and depth that led to it and the sleep set it must be explored
     under. A {e task} is a frame published to the shared deque pool: it
     roots a subtree that any domain may claim. Frames whose depth is
     not a multiple of the task cut stay on the owning worker's private
     stack and never touch a lock (beyond the seen-set shard), so the
     per-frame synchronization cost of the old work-stealing search is
     paid once per [task_cut] levels instead of once per state. *)

  type frame = {
    f_st : M.state;
    f_path : M.label list;
    f_depth : int;
    f_sleep : M.label list;
  }

  (* Per-domain deque: the owner pushes/pops at the back (LIFO keeps the
     frontier depth-first and small), thieves take from the front
     (oldest frames root the largest subtrees). Mutex-guarded; the
     two-list representation makes every operation O(1) amortized. *)
  module Dq = struct
    type t = {
      lock : Mutex.t;
      mutable back : frame list;  (* owner end, newest first *)
      mutable front : frame list;  (* steal end, oldest first *)
    }

    let create () = { lock = Mutex.create (); back = []; front = [] }

    let push t f =
      Mutex.lock t.lock;
      t.back <- f :: t.back;
      Mutex.unlock t.lock

    let pop t =
      Mutex.lock t.lock;
      let r =
        match t.back with
        | f :: rest ->
            t.back <- rest;
            Some f
        | [] -> (
            match t.front with
            | f :: rest ->
                t.front <- rest;
                Some f
            | [] -> None)
      in
      Mutex.unlock t.lock;
      r

    let steal t =
      Mutex.lock t.lock;
      let r =
        match t.front with
        | f :: rest ->
            t.front <- rest;
            Some f
        | [] -> (
            match List.rev t.back with
            | f :: rest ->
                t.back <- [];
                t.front <- rest;
                Some f
            | [] -> None)
      in
      Mutex.unlock t.lock;
      r
  end

  let nshards = 64
  let default_task_cut = 8

  let explore_tasks ~max_states ~deadline ~witnesses ~jobs ~task_cut ~oracle
      ~ample ~ctx init t0 =
    let labels = witnesses || Option.is_some oracle in
    let cut = max 1 task_cut in
    (* Striped shared seen-set: shard selected by high key bits (the
       tables themselves probe on low bits). *)
    let shards =
      Array.init nshards (fun _ ->
          (Mutex.create (), Statekey.Table.create ~dummy:dummy_seen ()))
    in
    let visited_g = Atomic.make 0 in
    let stop = Atomic.make false in
    let budget_flag = Atomic.make false in
    let failure : exn option Atomic.t = Atomic.make None in
    (* Count of shared tasks alive (published, not yet fully processed —
       a task is done only when the local stack it seeds has drained).
       Child tasks are published before their parent task's count is
       released, so [pending] can only reach 0 when the whole reachable
       space is done. Local frames are invisible to [pending]: they
       cannot outlive the task that owns them. *)
    let pending = Atomic.make 1 in
    let deques = Array.init jobs (fun _ -> Dq.create ()) in
    Dq.push deques.(0) { f_st = init; f_path = []; f_depth = 0; f_sleep = [] };
    let worker me =
      let acc = new_acc () in
      (* Gc counters are per-domain in OCaml 5: the delta below is this
         worker's own allocation, summed into [minor_words] at join. *)
      let mw0 = Gc.minor_words () in
      let dq = deques.(me) in
      (* Private frame stack: the task being processed plus every
         descendant below the next depth cut. LIFO keeps it depth-first
         and small. *)
      let local : frame list ref = ref [] in
      let process fr =
        if not (Atomic.get stop) then begin
          let key = M.key ctx fr.f_st in
          (* Stripe selection reads the key hash only — never the table
             capacity — so a stripe's table doubling cannot migrate keys
             between stripes (pinned by the stripe-stability test). *)
          let mx, tbl = shards.((Statekey.hash key lsr 48) land (nshards - 1)) in
          (* try_lock first purely to count contention: a miss means
             another domain held this stripe right now. *)
          if not (Mutex.try_lock mx) then begin
            acc.lockw <- acc.lockw + 1;
            Mutex.lock mx
          end;
          let verdict =
            match Statekey.Table.find_or_add tbl key (me, fr.f_sleep) with
            | `Added -> `Fresh
            | `Found (owner, old_sleep) ->
                if
                  (match oracle with None -> true | Some _ -> false)
                  || subset old_sleep fr.f_sleep
                then `Dup owner
                else begin
                  let z = inter old_sleep fr.f_sleep in
                  Statekey.Table.update tbl key (me, z);
                  `Again z
                end
          in
          Mutex.unlock mx;
          match verdict with
          | `Dup owner ->
              acc.dedup <- acc.dedup + 1;
              if owner <> me then acc.shared <- acc.shared + 1
          | (`Fresh | `Again _) as v ->
              let sleep =
                match v with `Again z -> z | `Fresh -> fr.f_sleep
              in
              let proceed =
                match v with
                | `Again _ -> true
                | `Fresh -> (
                    acc.visited <- acc.visited + 1;
                    if fr.f_depth > acc.maxd then acc.maxd <- fr.f_depth;
                    let n = Atomic.fetch_and_add visited_g 1 + 1 in
                    match max_states with
                    | Some b when n > b ->
                        Atomic.set budget_flag true;
                        Atomic.set stop true;
                        false
                    | _ -> true)
              in
              let proceed =
                proceed
                &&
                match deadline with
                | Some d when Unix.gettimeofday () > d ->
                    Atomic.set budget_flag true;
                    Atomic.set stop true;
                    false
                | _ -> true
              in
              if proceed then
                expand_state ~ctx ~witnesses ~labels ~oracle ~ample acc
                  fr.f_st fr.f_path fr.f_depth sleep
                  ~child:(fun st' path' depth' sleep' ->
                    let fr' =
                      { f_st = st';
                        f_path = path';
                        f_depth = depth';
                        f_sleep = sleep' }
                    in
                    if depth' mod cut = 0 then begin
                      (* Subtree crosses a depth cut: publish it so idle
                         domains can claim it. *)
                      acc.spawned <- acc.spawned + 1;
                      Atomic.incr pending;
                      Dq.push dq fr'
                    end
                    else local := fr' :: !local)
        end
      in
      (* Drain one task: seed the private stack and run it dry. On
         [stop] (budget, deadline, failure elsewhere) the remaining
         local frames are dropped — the search is being abandoned. *)
      let run_task fr =
        (try
           local := [ fr ];
           let continue = ref true in
           while !continue do
             match !local with
             | [] -> continue := false
             | f :: rest ->
                 local := rest;
                 if Atomic.get stop then (local := []; continue := false)
                 else process f
           done
         with e ->
           local := [];
           ignore (Atomic.compare_and_set failure None (Some e));
           Atomic.set stop true);
        Atomic.decr pending
      in
      let rec loop () =
        if Atomic.get stop || Atomic.get pending <= 0 then ()
        else
          match Dq.pop dq with
          | Some fr ->
              run_task fr;
              loop ()
          | None -> steal_loop 0
      and steal_loop misses =
        if Atomic.get stop || Atomic.get pending <= 0 then ()
        else begin
          let got = ref None in
          let i = ref 1 in
          while Option.is_none !got && !i < jobs do
            (match Dq.steal deques.((me + !i) mod jobs) with
            | Some f -> got := Some f
            | None -> ());
            incr i
          done;
          match !got with
          | Some fr ->
              acc.stolen <- acc.stolen + 1;
              run_task fr;
              loop ()
          | None ->
              (* Back off: spin briefly (cheap when every domain has its
                 own core), then yield the processor — when domains
                 outnumber cores, spinning would burn the timeslice the
                 task-holding worker needs to make progress. *)
              if misses < 32 then Domain.cpu_relax ()
              else Unix.sleepf 0.0002;
              steal_loop (misses + 1)
        end
      in
      loop ();
      acc.mwords <- int_of_float (Gc.minor_words () -. mw0);
      acc
    in
    let domains =
      Array.init jobs (fun me -> Domain.spawn (fun () -> worker me))
    in
    let accs = Array.to_list (Array.map Domain.join domains) in
    (match Atomic.get failure with Some e -> raise e | None -> ());
    let res = finish ~t0 ~jobs accs in
    (* Seen-set shape after the search: how evenly the stripes filled
       (peak occupancy) and how many were touched at all. *)
    let stripes, occ =
      Array.fold_left
        (fun (n, m) (_, tbl) ->
          let len = Statekey.Table.length tbl in
          ((if len > 0 then n + 1 else n), max m len))
        (0, 0) shards
    in
    let res =
      { res with
        stats =
          { res.stats with seen_stripes = stripes; stripe_occupancy = occ } }
    in
    if Atomic.get budget_flag then
      { res with stats = { res.stats with budget_hit = true } }
    else res

  let explore ?max_states ?deadline ?(witnesses = false) ?(por = true)
      ?(task_cut = default_task_cut) ?(jobs = 1) ~ctx init =
    let t0 = Unix.gettimeofday () in
    let oracle = if por then M.independent else None in
    let ample = if por then M.ample else None in
    if jobs <= 1 then begin
      let acc = new_acc () in
      let seen : seen_v Statekey.Table.t =
        Statekey.Table.create ~dummy:dummy_seen ()
      in
      let mw0 = Gc.minor_words () in
      dfs ~ctx ~witnesses ~max_states ~deadline ~oracle ~ample ~seen acc
        [ (init, [], 0) ];
      acc.mwords <- int_of_float (Gc.minor_words () -. mw0);
      let res = finish ~t0 ~jobs:1 [ acc ] in
      let len = Statekey.Table.length seen in
      { res with
        stats =
          { res.stats with
            seen_stripes = (if len > 0 then 1 else 0);
            stripe_occupancy = len } }
    end
    else
      explore_tasks ~max_states ~deadline ~witnesses ~jobs ~task_cut ~oracle
        ~ample ~ctx init t0
end

let enumerate_paths (type s l) ~(expand : s -> (s, l) expansion)
    ?(max_paths = max_int) (init : s) : l list list =
  let out = ref [] in
  let count = ref 0 in
  let exception Done in
  let rec go st acc =
    if !count >= max_paths then raise Done;
    match expand st with
    | Terminal _ ->
        incr count;
        out := List.rev acc :: !out
    | Steps steps ->
        Seq.iter
          (function Emit _ -> () | Step (lbl, st') -> go st' (lbl :: acc))
          steps
  in
  (try go init [] with Done -> ());
  !out
