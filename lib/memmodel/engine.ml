(** Model-generic exhaustive exploration engine. See the interface for
    the design and the parallel-search determinism argument. *)

(* Bump on any change to exploration semantics: the verification cache
   keys every stored result on this string. *)
let version = "vrm-engine/2"

type stats = {
  visited : int;
  dedup_hits : int;
  transitions : int;
  max_depth : int;
  outcomes : int;
  wall_s : float;
  jobs : int;
  budget_hit : bool;
}

let zero_stats =
  { visited = 0;
    dedup_hits = 0;
    transitions = 0;
    max_depth = 0;
    outcomes = 0;
    wall_s = 0.;
    jobs = 1;
    budget_hit = false }

let add_stats a b =
  { visited = a.visited + b.visited;
    dedup_hits = a.dedup_hits + b.dedup_hits;
    transitions = a.transitions + b.transitions;
    max_depth = max a.max_depth b.max_depth;
    outcomes = a.outcomes + b.outcomes;
    wall_s = a.wall_s +. b.wall_s;
    jobs = max a.jobs b.jobs;
    budget_hit = a.budget_hit || b.budget_hit }

let pp_stats fmt s =
  Format.fprintf fmt
    "states=%d dedup=%d transitions=%d depth=%d outcomes=%d wall=%.2fms \
     jobs=%d%s"
    s.visited s.dedup_hits s.transitions s.max_depth s.outcomes
    (s.wall_s *. 1000.) s.jobs
    (if s.budget_hit then " [budget hit]" else "")

type ('state, 'label) step =
  | Step of 'label * 'state
  | Emit of Behavior.outcome

type ('state, 'label) expansion =
  | Terminal of Behavior.outcome option
  | Steps of ('state, 'label) step Seq.t

module type MODEL = sig
  type ctx
  type state
  type label

  val key : state -> string
  val expand : ctx -> labels:bool -> state -> (state, label) expansion
end

module Make (M : MODEL) = struct
  type result = {
    behaviors : Behavior.t;
    witnesses : (Behavior.outcome * M.label list) list;
    stats : stats;
  }

  (* Mutable accumulator of one search (one domain's worth of work). *)
  type acc = {
    mutable behaviors : Behavior.t;
    wits : (Behavior.outcome, M.label list) Hashtbl.t;
    mutable visited : int;
    mutable dedup : int;
    mutable trans : int;
    mutable maxd : int;
    mutable budget_hit : bool;
  }

  let new_acc () =
    { behaviors = Behavior.empty;
      wits = Hashtbl.create 64;
      visited = 0;
      dedup = 0;
      trans = 0;
      maxd = 0;
      budget_hit = false }

  let record acc ~witnesses o path =
    if witnesses && not (Behavior.mem o acc.behaviors) then
      Hashtbl.replace acc.wits o (List.rev path);
    acc.behaviors <- Behavior.add o acc.behaviors

  exception Budget

  (* Depth-first search from each root, with a private seen-set. Roots
     carry the (reversed) label path and depth that led to them, so a
     parallel bucket reports witnesses with their full schedule. *)
  let dfs ~ctx ~witnesses ~max_states ~deadline acc roots =
    let seen = Hashtbl.create 4096 in
    let rec go st path depth =
      let key = M.key st in
      if Hashtbl.mem seen key then acc.dedup <- acc.dedup + 1
      else begin
        Hashtbl.add seen key ();
        acc.visited <- acc.visited + 1;
        if depth > acc.maxd then acc.maxd <- depth;
        (match max_states with
        | Some b when acc.visited > b ->
            acc.budget_hit <- true;
            raise Budget
        | _ -> ());
        (match deadline with
        | Some d when Unix.gettimeofday () > d ->
            acc.budget_hit <- true;
            raise Budget
        | _ -> ());
        match M.expand ctx ~labels:witnesses st with
        | Terminal (Some o) -> record acc ~witnesses o path
        | Terminal None -> ()
        | Steps steps ->
            Seq.iter
              (fun s ->
                acc.trans <- acc.trans + 1;
                match s with
                | Emit o -> record acc ~witnesses o path
                | Step (lbl, st') ->
                    go st'
                      (if witnesses then lbl :: path else path)
                      (depth + 1))
              steps
      end
    in
    try List.iter (fun (st, path, depth) -> go st path depth) roots
    with Budget -> ()

  let finish ~t0 ~jobs accs =
    let behaviors =
      List.fold_left
        (fun b (a : acc) -> Behavior.union b a.behaviors)
        Behavior.empty accs
    in
    (* first recorded witness per outcome, earliest accumulator wins *)
    let wits = Hashtbl.create 64 in
    List.iter
      (fun (a : acc) ->
        Hashtbl.iter
          (fun o p -> if not (Hashtbl.mem wits o) then Hashtbl.add wits o p)
          a.wits)
      accs;
    let stats =
      List.fold_left
        (fun (s : stats) (a : acc) ->
          { s with
            visited = s.visited + a.visited;
            dedup_hits = s.dedup_hits + a.dedup;
            transitions = s.transitions + a.trans;
            max_depth = max s.max_depth a.maxd;
            budget_hit = s.budget_hit || a.budget_hit })
        zero_stats accs
    in
    { behaviors;
      witnesses = Hashtbl.fold (fun o p l -> (o, p) :: l) wits [];
      stats =
        { stats with
          outcomes = Behavior.cardinal behaviors;
          wall_s = Unix.gettimeofday () -. t0;
          jobs } }

  let explore_parallel ~max_states ~deadline ~witnesses ~jobs ~ctx init t0 =
    (* BFS prefix: grow a frontier of distinct unexpanded states. *)
    let target = jobs * 4 in
    let acc0 = new_acc () in
    let seen = Hashtbl.create 1024 in
    let q = Queue.create () in
    Queue.add (init, [], 0) q;
    let budget_left () =
      (match max_states with Some b -> acc0.visited <= b | None -> true)
      && match deadline with
         | Some d -> Unix.gettimeofday () <= d
         | None -> true
    in
    while Queue.length q > 0 && Queue.length q < target && budget_left () do
      let st, path, depth = Queue.pop q in
      let key = M.key st in
      if Hashtbl.mem seen key then acc0.dedup <- acc0.dedup + 1
      else begin
        Hashtbl.add seen key ();
        acc0.visited <- acc0.visited + 1;
        if depth > acc0.maxd then acc0.maxd <- depth;
        match M.expand ctx ~labels:witnesses st with
        | Terminal (Some o) -> record acc0 ~witnesses o path
        | Terminal None -> ()
        | Steps steps ->
            Seq.iter
              (fun s ->
                acc0.trans <- acc0.trans + 1;
                match s with
                | Emit o -> record acc0 ~witnesses o path
                | Step (lbl, st') ->
                    Queue.add
                      (st', (if witnesses then lbl :: path else path), depth + 1)
                      q)
              steps
      end
    done;
    if not (budget_left ()) then acc0.budget_hit <- true;
    (* Deal the frontier round-robin and let one domain own each bucket.
       Domains keep private seen-sets: duplicated work is possible,
       missed or spurious outcomes are not. *)
    let buckets = Array.make jobs [] in
    let i = ref 0 in
    Queue.iter
      (fun item ->
        buckets.(!i mod jobs) <- item :: buckets.(!i mod jobs);
        incr i)
      q;
    let domains =
      Array.map
        (fun items ->
          let roots = List.rev items in
          Domain.spawn (fun () ->
              let acc = new_acc () in
              match dfs ~ctx ~witnesses ~max_states ~deadline acc roots with
              | () -> Ok acc
              | exception e -> Error e))
        buckets
    in
    let outcomes = Array.map Domain.join domains in
    Array.iter (function Error e -> raise e | Ok _ -> ()) outcomes;
    let accs =
      acc0
      :: (Array.to_list outcomes
         |> List.map (function Ok a -> a | Error _ -> assert false))
    in
    finish ~t0 ~jobs accs

  let explore ?max_states ?deadline ?(witnesses = false) ?(jobs = 1) ~ctx
      init =
    let t0 = Unix.gettimeofday () in
    if jobs <= 1 then begin
      let acc = new_acc () in
      dfs ~ctx ~witnesses ~max_states ~deadline acc [ (init, [], 0) ];
      finish ~t0 ~jobs:1 [ acc ]
    end
    else explore_parallel ~max_states ~deadline ~witnesses ~jobs ~ctx init t0
end

let enumerate_paths (type s l) ~(expand : s -> (s, l) expansion)
    ?(max_paths = max_int) (init : s) : l list list =
  let out = ref [] in
  let count = ref 0 in
  let exception Done in
  let rec go st acc =
    if !count >= max_paths then raise Done;
    match expand st with
    | Terminal _ ->
        incr count;
        out := List.rev acc :: !out
    | Steps steps ->
        Seq.iter
          (function Emit _ -> () | Step (lbl, st') -> go st' (lbl :: acc))
          steps
  in
  (try go init [] with Done -> ());
  !out
