(** Stable content digests for programs, configurations and behavior
    sets — the keying layer of the content-addressed verification cache.

    The serialization is hand-written (no ppx, no [Marshal]) so a digest
    depends only on the semantic content of the value: the same program
    produces the same digest in every process, on every run, under any
    [--jobs] setting. Program digests deliberately exclude the program
    {e name} and thread {e comments}: the cache is content-addressed, so
    two differently-named copies of the same code share one cache entry.

    Digests are MD5 hex strings ({!Stdlib.Digest}); collision resistance
    is not a security property here — the cache only needs stability. *)

val prog_bytes : Prog.t -> string
(** Canonical byte serialization of a program: threads (tid + code, in
    declaration order), initial memory, observables and declared shared
    bases. Names and comments are excluded. *)

val prog : Prog.t -> string
(** Hex digest of {!prog_bytes}. *)

val promising_config : Promising.config -> string
(** Canonical one-line rendering of an exploration budget, suitable for
    inclusion in a cache key ([loop_fuel/max_promises/cert_depth/
    max_states/strict_certification]). *)

val behaviors : Behavior.t -> string
(** Hex digest of the canonical {!Behavior.pp} rendering of a behavior
    set — the same digest the golden-parity tests use, so "bit-identical
    behavior set" is checkable across process boundaries. *)
