(** Exhaustive sequentially-consistent executor.

    Memory behaves as a single global map; at every step one thread executes
    its next instruction in program order (Lamport's SC). The executor
    explores {e all} interleavings by depth-first search with memoization on
    the full machine state, and returns the set of observable behaviors.

    Spin loops are unrolled up to a per-thread [fuel]; paths that exhaust
    fuel are reported as {!Behavior.Fuel_exhausted} rather than dropped. *)

type tstate = {
  code : Instr.t list;
  regs : int Reg.Map.t;
  fuel : int;
}

type state = {
  mem : int Loc.Map.t;
  threads : tstate array;
}

let lookup_reg regs r =
  match Reg.Map.find_opt r regs with Some v -> v | None -> 0

(* Expression evaluation without views: wrap values with a dummy view. *)
let lookup_rv regs r = (lookup_reg regs r, 0)

let read_mem mem loc =
  match Loc.Map.find_opt loc mem with Some v -> v | None -> 0

exception Thread_panic

(** One SC step of thread [i]. Returns the successor state, or raises
    [Thread_panic]. Returns [None] if the thread ran out of fuel. *)
let step_thread (st : state) (i : int) : state option =
  let t = st.threads.(i) in
  match t.code with
  | [] -> invalid_arg "step_thread: thread done"
  | instr :: rest -> (
      let set_thread t' =
        let threads = Array.copy st.threads in
        threads.(i) <- t';
        { st with threads }
      in
      let set_thread_mem t' mem =
        let threads = Array.copy st.threads in
        threads.(i) <- t';
        { mem; threads }
      in
      try
        match instr with
        | Instr.Nop | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _
        | Instr.Barrier _ ->
            Some (set_thread { t with code = rest })
        | Instr.Panic -> raise Thread_panic
        | Instr.Move (r, e) ->
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            Some (set_thread { t with code = rest; regs = Reg.Map.add r v t.regs })
        | Instr.Load (r, a, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let v = read_mem st.mem loc in
            Some (set_thread { t with code = rest; regs = Reg.Map.add r v t.regs })
        | Instr.Store (a, e, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            Some
              (set_thread_mem { t with code = rest } (Loc.Map.add loc v st.mem))
        | Instr.Faa (r, a, e, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let delta, _ = Expr.eval_v (lookup_rv t.regs) e in
            let old = read_mem st.mem loc in
            Some
              (set_thread_mem
                 { t with code = rest; regs = Reg.Map.add r old t.regs }
                 (Loc.Map.add loc (old + delta) st.mem))
        | Instr.Xchg (r, a, e, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            let old = read_mem st.mem loc in
            Some
              (set_thread_mem
                 { t with code = rest; regs = Reg.Map.add r old t.regs }
                 (Loc.Map.add loc v st.mem))
        | Instr.Cas (r, a, expected, desired, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            let exp_v, _ = Expr.eval_v (lookup_rv t.regs) expected in
            let des_v, _ = Expr.eval_v (lookup_rv t.regs) desired in
            let old = read_mem st.mem loc in
            let mem =
              if old = exp_v then Loc.Map.add loc des_v st.mem else st.mem
            in
            Some
              (set_thread_mem
                 { t with code = rest; regs = Reg.Map.add r old t.regs }
                 mem)
        | Instr.If (c, br_then, br_else) ->
            let b, _ = Expr.eval_b (lookup_rv t.regs) c in
            let code = (if b then br_then else br_else) @ rest in
            Some (set_thread { t with code })
        | Instr.While (c, body) ->
            let b, _ = Expr.eval_b (lookup_rv t.regs) c in
            if not b then Some (set_thread { t with code = rest })
            else if t.fuel <= 0 then None
            else
              Some
                (set_thread
                   { t with
                     code = body @ (Instr.While (c, body) :: rest);
                     fuel = t.fuel - 1 })
      with Expr.Eval_panic _ -> raise Thread_panic)

let observe (prog : Prog.t) (st : state) status : Behavior.outcome =
  let value = function
    | Prog.Obs_reg (tid, r) ->
        let idx =
          match
            List.find_index (fun th -> th.Prog.tid = tid) prog.Prog.threads
          with
          | Some i -> i
          | None -> invalid_arg "observe: unknown tid"
        in
        lookup_reg st.threads.(idx).regs r
    | Prog.Obs_loc l -> read_mem st.mem l
  in
  Behavior.outcome ~status
    (List.map (fun obs -> (obs, value obs)) prog.Prog.observables)

let initial_state ?(fuel = 64) (prog : Prog.t) : state =
  let mem =
    List.fold_left (fun m (l, v) -> Loc.Map.add l v m) Loc.Map.empty
      prog.Prog.init
  in
  let threads =
    Array.of_list
      (List.map
         (fun th -> { code = th.Prog.code; regs = Reg.Map.empty; fuel })
         prog.Prog.threads)
  in
  { mem; threads }

let hash_thread h (t : tstate) =
  Statekey.char h 'T';
  Statekey.int h t.fuel;
  Statekey.int h (Reg.Map.cardinal t.regs);
  Reg.Map.iter
    (fun r v ->
      Statekey.str h (Reg.name r);
      Statekey.int h v)
    t.regs;
  Statekey.instrs h t.code

let state_key (st : state) : Statekey.t =
  let h = Statekey.fresh () in
  Statekey.int h (Loc.Map.cardinal st.mem);
  Loc.Map.iter
    (fun l v ->
      Statekey.loc h l;
      Statekey.int h v)
    st.mem;
  Array.iter (fun t -> hash_thread h t) st.threads;
  Statekey.finish h

(* Orbit-canonical key: shared memory hashed as usual, per-thread
   sub-keys absorbed in canonical order so thread-permuted states
   collapse to one seen-set entry (nothing thread-local in SC escapes
   the thread, so the sub-key covers everything that distinguishes
   interchangeable threads). *)
let canonical_key sym (st : state) : Statekey.t =
  let h = Statekey.fresh () in
  Statekey.int h (Loc.Map.cardinal st.mem);
  Loc.Map.iter
    (fun l v ->
      Statekey.loc h l;
      Statekey.int h v)
    st.mem;
  let sub =
    Array.map
      (fun t ->
        let th = Statekey.fresh () in
        hash_thread th t;
        Statekey.finish th)
      st.threads
  in
  Symmetry.fold_threads sym h sub;
  Statekey.finish h

(* is register [r] of thread index [idx] observable? *)
let observable_reg (prog : Prog.t) idx r =
  match List.nth_opt prog.Prog.threads idx with
  | Some th ->
      List.exists
        (function
          | Prog.Obs_reg (tid, r') -> tid = th.Prog.tid && Reg.name r' = Reg.name r
          | Prog.Obs_loc _ -> false)
        prog.Prog.observables
  | None -> false

(* POR footprint of thread [i]'s (unique) next transition. Under SC a
   thread has exactly one enabled transition, so any instruction that
   touches neither memory nor an observable register is silent
   (ample-eligible); barriers, pulls/pushes and TLBIs are no-ops here. *)
let label_of (prog : Prog.t) (st : state) i (instr : Instr.t) : Porlabel.t =
  let t = st.threads.(i) in
  try
    match instr with
    | Instr.Nop | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _
    | Instr.Barrier _ | Instr.If _ | Instr.While _ | Instr.Panic ->
        Porlabel.silent ~tid:i
    | Instr.Move (r, _) ->
        if observable_reg prog i r then Porlabel.private_ ~tid:i
        else Porlabel.silent ~tid:i
    | Instr.Load (_, a, _) ->
        let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
        Porlabel.read ~tid:i loc
    | Instr.Store (a, _, _) ->
        let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
        Porlabel.write ~tid:i loc
    | Instr.Faa (_, a, _, _)
    | Instr.Xchg (_, a, _, _)
    | Instr.Cas (_, a, _, _, _) ->
        let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
        Porlabel.rmw ~tid:i loc
  with Expr.Eval_panic _ ->
    (* the step itself panicked and emitted; label is never used *)
    Porlabel.silent ~tid:i

(* The executor is an instance of the shared exploration engine: one SC
   transition per runnable thread, terminal states observe [Normal],
   fuel-exhausted and panicking steps emit their outcome in place. *)
module Model = struct
  type ctx = { prog : Prog.t; sym : Symmetry.t option }
  type nonrec state = state
  type label = Porlabel.t

  let key ctx st =
    match ctx.sym with
    | None -> state_key st
    | Some s -> canonical_key s st

  let independent = Some (fun _ctx a b -> Porlabel.independent a b)
  let ample = Some (fun _ctx l -> Porlabel.ample l)

  let sleepable ctx (l : Porlabel.t) =
    match ctx.sym with
    | None -> true
    | Some s -> not (Symmetry.grouped s l.Porlabel.tid)

  let dummy i = Porlabel.silent ~tid:i

  let expand ctx ~labels (st : state) : (state, label) Engine.expansion =
    let prog = ctx.prog in
    let runnable = ref [] in
    Array.iteri
      (fun i t -> if t.code <> [] then runnable := i :: !runnable)
      st.threads;
    match !runnable with
    | [] -> Engine.Terminal (Some (observe prog st Behavior.Normal))
    | rs ->
        Engine.Steps
          (List.to_seq rs
          |> Seq.map (fun i ->
                 match step_thread st i with
                 | Some st' ->
                     let lbl =
                       if labels then
                         label_of prog st i (List.hd st.threads.(i).code)
                       else dummy i
                     in
                     Engine.Step (lbl, st')
                 | None ->
                     Engine.Emit (observe prog st Behavior.Fuel_exhausted)
                 | exception Thread_panic ->
                     Engine.Emit (observe prog st Behavior.Panicked)))
end

module E = Engine.Make (Model)

(* patch the symmetry statistics (the engine itself never sees them) *)
let with_sym_stats sym (stats : Engine.stats) =
  match sym with
  | None -> stats
  | Some s ->
      { stats with
        Engine.sym_groups = Symmetry.n_groups s;
        sym_collapsed = Symmetry.collapsed s }

(** [run_stats ?fuel ?jobs ?deadline ?por ?sym prog] explores all SC
    interleavings of [prog] and returns its behavior set with exploration
    statistics. [por] (default on) applies sleep-set/ample partial-order
    reduction; [sym] (default on) collapses thread-permuted states of
    symmetric thread groups — same behavior set either way. *)
let run_stats ?(fuel = 64) ?(jobs = 1) ?deadline ?por ?(sym = true)
    (prog : Prog.t) : Behavior.t * Engine.stats =
  let symmetry = if sym then Symmetry.detect prog else None in
  let ctx = { Model.prog; sym = symmetry } in
  let r = E.explore ?deadline ?por ~jobs ~ctx (initial_state ~fuel prog) in
  (r.E.behaviors, with_sym_stats symmetry r.E.stats)

(** [run ?fuel ?jobs ?deadline prog] explores all SC interleavings of
    [prog] and returns its behavior set. *)
let run ?fuel ?jobs ?deadline ?por ?sym (prog : Prog.t) : Behavior.t =
  fst (run_stats ?fuel ?jobs ?deadline ?por ?sym prog)
