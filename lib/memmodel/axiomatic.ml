(** An executable Armv8 axiomatic memory model, for cross-validating the
    Promising executor.

    The paper leans on the theorem that Promising Arm is equivalent to the
    Armv8 axiomatic specification (Pulte et al.); this module makes that
    relationship {e testable} in this reproduction: we enumerate every
    candidate execution — a control-flow path per thread, a reads-from
    choice for each load and a per-location coherence order over the
    stores — and keep the candidates satisfying the Armv8 axioms:

    {ul
    {- {b internal} (sc-per-location): acyclic(po-loc ∪ rf ∪ co ∪ fr);}
    {- {b external}: acyclic(ob), with
       ob = rfe ∪ coe ∪ fre (observed-by)
          ∪ address/data dependency order (dob)
          ∪ control and control+ISB dependency order
          ∪ barrier order (bob):
            po;[dmb.full];po, [R];po;[dmb.ld];po, [W];po;[dmb.st];po;[W],
            [A];po (acquire), po;[L] (release), [L];po;[A] (RCsc);}
    {- {b atomicity}: an RMW's read and write are adjacent in co.}}

    All candidate-execution machinery (path expansion, static relations,
    axiom predicates, value decoding) lives in {!Candidate} and is shared
    verbatim with the SAT-based bounded model checker {!Bmc}; this module
    is the explicit enumeration driver. The fragment covers straight-line
    code, branches, [Move], bounded [While] unrolling and computed
    addresses over a static index domain; [Xchg]/[Cas]/[Panic] raise
    {!Unsupported}. On the straight-line fragment {!run} is compared
    against {!Promising} on thousands of random programs by the property
    tests in [test_axiomatic]. *)

exception Unsupported = Candidate.Unsupported

let run ?(bound = Candidate.default_bound) (prog : Prog.t) : Behavior.t =
  let results = ref Behavior.empty in
  List.iter
    (fun (x : Candidate.combo) ->
      let locs = Candidate.locs x in
      let writes_on loc = Candidate.writes_on x loc in
      let reads = Candidate.reads x in
      let co_choices =
        List.map
          (fun loc ->
            List.map
              (fun perm ->
                (loc, List.map (fun (e : Candidate.event) -> e.id) perm))
              (Candidate.permutations (writes_on loc)))
          locs
      in
      let rf_choices =
        List.map
          (fun (r : Candidate.event) ->
            let loc = Option.get r.loc in
            List.map
              (fun (w : Candidate.event) -> (r.id, w.id))
              (writes_on loc)
            @ [ (r.id, -1) ] (* the initial write *))
          reads
      in
      let status = Candidate.status_of x in
      List.iter
        (fun co ->
          List.iter
            (fun rf ->
              if Candidate.valid x ~rf ~co then
                match
                  Candidate.decode prog x ~rf:(fun r -> List.assoc r rf)
                with
                | Candidate.Feasible res ->
                    let co_last loc =
                      match List.assoc_opt loc co with
                      | Some (_ :: _ as order) ->
                          Some (List.nth order (List.length order - 1))
                      | _ -> None
                    in
                    results :=
                      Behavior.add
                        (Behavior.outcome ~status
                           (Candidate.outcome_values prog x res ~co_last))
                        !results
                | Candidate.Infeasible | Candidate.Stuck -> ())
            (Candidate.product rf_choices))
        (Candidate.product co_choices))
    (Candidate.combos ~bound prog);
  !results
