(** Exhaustive x86-TSO executor (standard operational model: per-thread
    FIFO store buffers with forwarding; fences and RMWs flush).

    Exists to make the paper's §1 contrast executable: SC reasoning made
    sound by local-DRF survives on TSO, but Arm admits strictly more —
    the barrier-less §2 bugs are unreachable here yet reachable under
    {!Promising}. *)

val run :
  ?fuel:int -> ?jobs:int -> ?por:bool -> ?sym:bool -> Prog.t -> Behavior.t
(** [por] (default on) applies sleep-set/ample partial-order reduction —
    identical behavior set, fewer states. [sym] (default on) applies
    thread-symmetry reduction ({!Symmetry}) — identical behavior set,
    up to N! fewer states on N interchangeable threads (store buffers
    are thread-local, so they permute with their threads for free). *)

val run_stats :
  ?fuel:int -> ?jobs:int -> ?deadline:float -> ?por:bool -> ?sym:bool ->
  Prog.t -> Behavior.t * Engine.stats
(** Like {!run}, also returning exploration statistics from the shared
    {!Engine}. [deadline] (absolute [Unix.gettimeofday] time) cancels
    the search when it passes. *)
