(** Transition footprints for partial-order reduction. See the
    interface for the commutativity contract each field carries. *)

type t = {
  tid : int;
  disc : int;
  silent : bool;
  global : bool;
  alloc : bool;
  reads : Loc.t list;
  writes : Loc.t list;
  obases : string list;
  otransfer : string list;
  cert_read : string list;
  cert_write : string list;
}

let empty ~tid =
  { tid;
    disc = 0;
    silent = false;
    global = false;
    alloc = false;
    reads = [];
    writes = [];
    obases = [];
    otransfer = [];
    cert_read = [];
    cert_write = [] }

let silent ~tid = { (empty ~tid) with silent = true }
let private_ ~tid = empty ~tid
let read ~tid loc = { (empty ~tid) with reads = [ loc ] }
let write ~tid loc = { (empty ~tid) with writes = [ loc ] }

let rmw ~tid loc =
  { (empty ~tid) with reads = [ loc ]; writes = [ loc ] }

let sync ~tid = { (empty ~tid) with global = true }

(* A label with no footprint at all: commutes even with [global]
   labels. [silent] labels are quiet by construction, but a quiet label
   need not be silent (e.g. an observable register move). *)
let quiet l =
  (not l.global) && (not l.alloc) && l.reads = [] && l.writes = []
  && l.obases = [] && l.otransfer = [] && l.cert_read = []
  && l.cert_write = []

let disjoint_loc xs ys =
  not (List.exists (fun x -> List.exists (Loc.equal x) ys) xs)

let disjoint_str xs ys =
  not (List.exists (fun x -> List.mem x ys) xs)

let independent a b =
  a.tid <> b.tid
  && ((not a.global) || quiet b)
  && ((not b.global) || quiet a)
  && (not (a.alloc && b.alloc))
  && disjoint_loc a.writes b.reads
  && disjoint_loc a.writes b.writes
  && disjoint_loc b.writes a.reads
  && disjoint_str a.otransfer b.obases
  && disjoint_str a.otransfer b.otransfer
  && disjoint_str b.otransfer a.obases
  && disjoint_str a.cert_write b.cert_read
  && disjoint_str b.cert_write a.cert_read

let ample l = l.silent

let pp fmt l =
  let locs prefix = function
    | [] -> ""
    | ls ->
        Format.asprintf "%s%a" prefix
          (Format.pp_print_list
             ~pp_sep:(fun f () -> Format.fprintf f ",")
             Loc.pp)
          ls
  in
  let strs prefix = function
    | [] -> ""
    | ss -> prefix ^ String.concat "," ss
  in
  Format.fprintf fmt "t%d:%s%s%s%s%s%s%s%s%s" l.tid
    (if l.silent then "silent"
     else if l.global then "sync"
     else if quiet l then "private"
     else "")
    (locs "R" l.reads) (locs "W" l.writes)
    (if l.alloc then "@" else "")
    (strs "o" l.obases) (strs "x" l.otransfer)
    (strs "cr" l.cert_read) (strs "cw" l.cert_write)
    (if l.disc <> 0 then Format.asprintf "#%d" l.disc else "")
