(** Transition labels for partial-order reduction. See the interface for
    the commutativity contract each classification carries. *)

type kind =
  | Silent
  | Private
  | Read of Loc.t
  | Write of Loc.t
  | Rmw of Loc.t
  | Sync

type t = { tid : int; kind : kind }

let independent a b =
  a.tid <> b.tid
  &&
  match (a.kind, b.kind) with
  | (Silent | Private), _ | _, (Silent | Private) -> true
  | Read _, Read _ -> true
  | Sync, _ | _, Sync -> false
  | (Read la | Write la | Rmw la), (Read lb | Write lb | Rmw lb) ->
      not (Loc.equal la lb)

let ample l = match l.kind with Silent -> true | _ -> false

let pp fmt l =
  let k =
    match l.kind with
    | Silent -> "silent"
    | Private -> "private"
    | Read loc -> Format.asprintf "R%a" Loc.pp loc
    | Write loc -> Format.asprintf "W%a" Loc.pp loc
    | Rmw loc -> Format.asprintf "U%a" Loc.pp loc
    | Sync -> "sync"
  in
  Format.fprintf fmt "t%d:%s" l.tid k
