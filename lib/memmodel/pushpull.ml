(** The push/pull Promising model (paper §4.1).

    Two executable artifacts live here:

    {1 Ownership-instrumented execution}

    The DRF-Kernel condition is checked by running a program under the SC
    interleaving semantics while interpreting the ghost [Pull]/[Push]
    annotations: a CPU must pull a shared base before accessing it and push
    it afterwards; the machine {e panics} when pulling an owned base,
    pushing a non-owned base, or accessing a shared base it does not own.
    Per the paper, a program satisfies DRF-Kernel iff no interleaving
    panics. Synchronization-method internals (the ticket lock's own
    [ticket]/[now] cells) and page-table bases are exempted, exactly as the
    condition's side clause allows.

    {1 Promise-list validity (Fig. 4) and barrier fulfillment (Fig. 5)}

    A standalone validator over abstract push/pull promise lists and
    per-CPU fulfillment traces, used by unit tests mirroring the paper's
    figures and by {!Vrm.Partial_order}. *)

(* ------------------------------------------------------------------ *)
(* Ownership-instrumented SC execution                                 *)
(* ------------------------------------------------------------------ *)

type violation = {
  v_tid : int;
  v_base : string;
  v_kind : [ `Pull_owned | `Push_not_owned | `Access_not_owned ];
  v_detail : string;
}

let pp_violation fmt v =
  let kind =
    match v.v_kind with
    | `Pull_owned -> "pull of an owned location"
    | `Push_not_owned -> "push of a location not owned by this CPU"
    | `Access_not_owned -> "access to a shared location not owned"
  in
  Format.fprintf fmt "CPU %d: %s on base %s (%s)" v.v_tid kind v.v_base
    v.v_detail

(** A recorded event of one interleaved execution (consumed by the
    partial-order construction). *)
type event =
  | Ev_read of int * Loc.t * int  (** tid, loc, value *)
  | Ev_write of int * Loc.t * int
  | Ev_rmw of int * Loc.t * int * int  (** tid, loc, old, new *)
  | Ev_pull of int * string list
  | Ev_push of int * string list
  | Ev_barrier of int * Instr.barrier
  | Ev_tlbi of int * Loc.t option  (** tid, invalidated entry; [None] = all *)

let event_tid = function
  | Ev_read (t, _, _) | Ev_write (t, _, _) | Ev_rmw (t, _, _, _)
  | Ev_pull (t, _) | Ev_push (t, _) | Ev_barrier (t, _) | Ev_tlbi (t, _) ->
      t

type check_result =
  | Drf_ok of Behavior.t
  | Drf_violation of violation
  | Drf_kernel_panic of Behavior.outcome
      (** the program itself panicked (e.g. explicit [Panic]) — reported
          separately from ownership violations *)

type tstate = { code : Instr.t list; regs : int Reg.Map.t; fuel : int }

type state = {
  mem : int Loc.Map.t;
  owners : (string * int) list;  (** base -> owning tid *)
  threads : tstate array;
  poison : violation option;
      (** a transition into this state violated the ownership discipline;
          expanding the state raises, so the violation surfaces at the
          same point of the depth-first order as the seed's lazy
          in-sequence raise did *)
}

let lookup_reg regs r =
  match Reg.Map.find_opt r regs with Some v -> v | None -> 0

let lookup_rv regs r = (lookup_reg regs r, 0)

let read_mem mem loc =
  match Loc.Map.find_opt loc mem with Some v -> v | None -> 0

exception Thread_panic
exception Ownership of violation

module Base_set = Set.Make (String)

(** The set of bases subject to the ownership discipline, precomputed
    once per check: every load/store/RMW of every interleaving consults
    it, so membership must not rescan the shared/exempt lists each
    time. *)
let tracked_set ~shared ~exempt =
  Base_set.diff (Base_set.of_list shared) (Base_set.of_list exempt)

let is_tracked ~tracked base = Base_set.mem base tracked

let check_access ~tracked st tid base =
  if is_tracked ~tracked base then
    match List.assoc_opt base st.owners with
    | Some o when o = tid -> ()
    | Some _ | None ->
        raise
          (Ownership
             { v_tid = tid;
               v_base = base;
               v_kind = `Access_not_owned;
               v_detail = "shared base accessed outside pull/push section" })

let step_thread ~tracked (st : state) (i : int) :
    (state * event option) option =
  let t = st.threads.(i) in
  match t.code with
  | [] -> invalid_arg "Pushpull.step_thread: thread done"
  | instr :: rest -> (
      let with_thread t' = { st with threads = (let a = Array.copy st.threads in a.(i) <- t'; a) } in
      try
        match instr with
        | Instr.Nop -> Some (with_thread { t with code = rest }, None)
        | Instr.Tlbi a ->
            let scope =
              Option.map (fun a -> fst (Expr.eval_addr (lookup_rv t.regs) a)) a
            in
            Some (with_thread { t with code = rest }, Some (Ev_tlbi (i, scope)))
        | Instr.Barrier b ->
            Some (with_thread { t with code = rest }, Some (Ev_barrier (i, b)))
        | Instr.Panic -> raise Thread_panic
        | Instr.Pull bases ->
            let tracked =
              List.filter (fun b -> is_tracked ~tracked b) bases
            in
            List.iter
              (fun b ->
                match List.assoc_opt b st.owners with
                | Some _ ->
                    raise
                      (Ownership
                         { v_tid = i;
                           v_base = b;
                           v_kind = `Pull_owned;
                           v_detail = "base already owned" })
                | None -> ())
              tracked;
            let owners = List.map (fun b -> (b, i)) tracked @ st.owners in
            Some
              ( { (with_thread { t with code = rest }) with owners },
                Some (Ev_pull (i, bases)) )
        | Instr.Push bases ->
            let tracked =
              List.filter (fun b -> is_tracked ~tracked b) bases
            in
            List.iter
              (fun b ->
                match List.assoc_opt b st.owners with
                | Some o when o = i -> ()
                | _ ->
                    raise
                      (Ownership
                         { v_tid = i;
                           v_base = b;
                           v_kind = `Push_not_owned;
                           v_detail = "base not owned by pushing CPU" }))
              tracked;
            let owners =
              List.filter (fun (b, _) -> not (List.mem b tracked)) st.owners
            in
            Some
              ( { (with_thread { t with code = rest }) with owners },
                Some (Ev_push (i, bases)) )
        | Instr.Move (r, e) ->
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            Some
              ( with_thread
                  { t with code = rest; regs = Reg.Map.add r v t.regs },
                None )
        | Instr.Load (r, a, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            check_access ~tracked st i (Loc.base loc);
            let v = read_mem st.mem loc in
            Some
              ( with_thread
                  { t with code = rest; regs = Reg.Map.add r v t.regs },
                Some (Ev_read (i, loc, v)) )
        | Instr.Store (a, e, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            check_access ~tracked st i (Loc.base loc);
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            Some
              ( { (with_thread { t with code = rest }) with
                  mem = Loc.Map.add loc v st.mem },
                Some (Ev_write (i, loc, v)) )
        | Instr.Faa (r, a, e, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            check_access ~tracked st i (Loc.base loc);
            let delta, _ = Expr.eval_v (lookup_rv t.regs) e in
            let old = read_mem st.mem loc in
            Some
              ( { (with_thread
                     { t with code = rest; regs = Reg.Map.add r old t.regs })
                  with
                  mem = Loc.Map.add loc (old + delta) st.mem },
                Some (Ev_rmw (i, loc, old, old + delta)) )
        | Instr.Xchg (r, a, e, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            check_access ~tracked st i (Loc.base loc);
            let v, _ = Expr.eval_v (lookup_rv t.regs) e in
            let old = read_mem st.mem loc in
            Some
              ( { (with_thread
                     { t with code = rest; regs = Reg.Map.add r old t.regs })
                  with
                  mem = Loc.Map.add loc v st.mem },
                Some (Ev_rmw (i, loc, old, v)) )
        | Instr.Cas (r, a, expected, desired, _) ->
            let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
            check_access ~tracked st i (Loc.base loc);
            let exp_v, _ = Expr.eval_v (lookup_rv t.regs) expected in
            let des_v, _ = Expr.eval_v (lookup_rv t.regs) desired in
            let old = read_mem st.mem loc in
            let mem =
              if old = exp_v then Loc.Map.add loc des_v st.mem else st.mem
            in
            Some
              ( { (with_thread
                     { t with code = rest; regs = Reg.Map.add r old t.regs })
                  with
                  mem },
                Some (Ev_rmw (i, loc, old, (if old = exp_v then des_v else old))) )
        | Instr.If (c, br_then, br_else) ->
            let b, _ = Expr.eval_b (lookup_rv t.regs) c in
            Some
              ( with_thread
                  { t with code = (if b then br_then else br_else) @ rest },
                None )
        | Instr.While (c, body) ->
            let b, _ = Expr.eval_b (lookup_rv t.regs) c in
            if not b then Some (with_thread { t with code = rest }, None)
            else if t.fuel <= 0 then None
            else
              Some
                ( with_thread
                    { t with
                      code = body @ (Instr.While (c, body) :: rest);
                      fuel = t.fuel - 1 },
                  None )
      with Expr.Eval_panic _ -> raise Thread_panic)

let observe (prog : Prog.t) (st : state) status : Behavior.outcome =
  let value = function
    | Prog.Obs_reg (tid, r) ->
        let idx =
          match
            List.find_index (fun th -> th.Prog.tid = tid) prog.Prog.threads
          with
          | Some i -> i
          | None -> invalid_arg "observe: unknown tid"
        in
        lookup_reg st.threads.(idx).regs r
    | Prog.Obs_loc l -> read_mem st.mem l
  in
  Behavior.outcome ~status
    (List.map (fun obs -> (obs, value obs)) prog.Prog.observables)

let hash_poison h (st : state) =
  match st.poison with
  | None -> Statekey.char h 'N'
  | Some v ->
      Statekey.char h 'V';
      Statekey.int h v.v_tid;
      Statekey.str h v.v_base;
      Statekey.int h
        (match v.v_kind with
        | `Pull_owned -> 0
        | `Push_not_owned -> 1
        | `Access_not_owned -> 2);
      Statekey.str h v.v_detail

let hash_mem_owners h (st : state) =
  Statekey.int h (Loc.Map.cardinal st.mem);
  Loc.Map.iter
    (fun l v ->
      Statekey.loc h l;
      Statekey.int h v)
    st.mem;
  List.iter
    (fun (b, o) ->
      Statekey.str h b;
      Statekey.int h o)
    (List.sort compare st.owners)

let hash_thread h (t : tstate) =
  Statekey.char h 'T';
  Statekey.int h t.fuel;
  Statekey.int h (Reg.Map.cardinal t.regs);
  Reg.Map.iter
    (fun r v ->
      Statekey.str h (Reg.name r);
      Statekey.int h v)
    t.regs;
  Statekey.instrs h t.code

let state_key (st : state) : Statekey.t =
  let h = Statekey.fresh () in
  hash_poison h st;
  hash_mem_owners h st;
  Array.iter (fun t -> hash_thread h t) st.threads;
  Statekey.finish h

(* Orbit-canonical key. Only used when the tracked set is empty (see
   [check_stats]): then [poison] is always [None] and [owners] never
   changes from its initial value, so neither can leak a concrete tid
   that the canonical order would have to remap. *)
let canonical_key sym (st : state) : Statekey.t =
  let h = Statekey.fresh () in
  hash_poison h st;
  hash_mem_owners h st;
  let sub =
    Array.map
      (fun t ->
        let th = Statekey.fresh () in
        hash_thread th t;
        Statekey.finish th)
      st.threads
  in
  Symmetry.fold_threads sym h sub;
  Statekey.finish h

let initial_state ~fuel ~initial_owners (prog : Prog.t) : state =
  let mem =
    List.fold_left (fun m (l, v) -> Loc.Map.add l v m) Loc.Map.empty
      prog.Prog.init
  in
  let threads =
    Array.of_list
      (List.map
         (fun th -> { code = th.Prog.code; regs = Reg.Map.empty; fuel })
         prog.Prog.threads)
  in
  { mem; owners = initial_owners; threads; poison = None }

(* is register [r] of thread index [idx] observable? *)
let observable_reg (prog : Prog.t) idx r =
  match List.nth_opt prog.Prog.threads idx with
  | Some th ->
      List.exists
        (function
          | Prog.Obs_reg (tid, r') ->
              tid = th.Prog.tid && Reg.name r' = Reg.name r
          | Prog.Obs_loc _ -> false)
        prog.Prog.observables
  | None -> false

(* POR footprint of thread [i]'s (unique, SC) next transition. Tracked
   accesses consult ownership ([obases]); pulls and pushes change it
   ([otransfer]), which is what makes them dependent on every access and
   pull/push of the same base — the orders that differ on whether a
   violation fires are never pruned. *)
let label_of ~tracked (prog : Prog.t) (st : state) i (instr : Instr.t) :
    Porlabel.t =
  let t = st.threads.(i) in
  let owned b acc = if is_tracked ~tracked b then b :: acc else acc in
  try
    match instr with
    | Instr.Nop | Instr.Tlbi _ | Instr.Barrier _ | Instr.If _
    | Instr.While _ | Instr.Panic ->
        Porlabel.silent ~tid:i
    | Instr.Pull bases | Instr.Push bases -> (
        match List.filter (fun b -> is_tracked ~tracked b) bases with
        | [] -> Porlabel.silent ~tid:i
        | tr ->
            { (Porlabel.empty ~tid:i) with obases = tr; otransfer = tr })
    | Instr.Move (r, _) ->
        if observable_reg prog i r then Porlabel.private_ ~tid:i
        else Porlabel.silent ~tid:i
    | Instr.Load (_, a, _) ->
        let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
        { (Porlabel.read ~tid:i loc) with
          obases = owned (Loc.base loc) [] }
    | Instr.Store (a, _, _) ->
        let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
        { (Porlabel.write ~tid:i loc) with
          obases = owned (Loc.base loc) [] }
    | Instr.Faa (_, a, _, _)
    | Instr.Xchg (_, a, _, _)
    | Instr.Cas (_, a, _, _, _) ->
        let loc, _ = Expr.eval_addr (lookup_rv t.regs) a in
        { (Porlabel.rmw ~tid:i loc) with
          obases = owned (Loc.base loc) [] }
  with Expr.Eval_panic _ ->
    (* the step itself panicked and emitted; label is never used *)
    Porlabel.silent ~tid:i

(* The ownership-instrumented executor is an instance of the shared
   exploration engine. An [Ownership] violation does not escape from the
   transition itself: the violating step becomes a transition into a
   {e poisoned} state, and expanding the poisoned state raises. Under
   exact search the poisoned child is expanded immediately after the
   transition is forced (depth-first), so the first violation surfaces
   at the same interleaving the seed's in-sequence raise found. The
   violating transition carries a {e global} footprint, so POR never
   sleeps it; program panics are emitted as [Panicked] outcomes and
   split off into [Drf_kernel_panic] afterwards. *)
module Model = struct
  type ctx = {
    prog : Prog.t;
    tracked : Base_set.t;
    sym : Symmetry.t option;
        (** only ever [Some] when [tracked] is empty — violations are
            then impossible and [owners] is constant, so canonical keys
            cannot mask an ownership outcome (see {!Symmetry}) *)
  }

  type nonrec state = state
  type label = Porlabel.t

  let key ctx st =
    match ctx.sym with
    | None -> state_key st
    | Some s -> canonical_key s st

  let independent = Some (fun _ctx a b -> Porlabel.independent a b)
  let ample = Some (fun _ctx l -> Porlabel.ample l)

  let sleepable ctx (l : Porlabel.t) =
    match ctx.sym with
    | None -> true
    | Some s -> not (Symmetry.grouped s l.Porlabel.tid)

  let dummy i = Porlabel.silent ~tid:i

  let expand { prog; tracked; sym = _ } ~labels (st : state) :
      (state, label) Engine.expansion =
    match st.poison with
    | Some v -> raise (Ownership v)
    | None -> (
        let runnable = ref [] in
        Array.iteri
          (fun i t -> if t.code <> [] then runnable := i :: !runnable)
          st.threads;
        match !runnable with
        | [] -> Engine.Terminal (Some (observe prog st Behavior.Normal))
        | rs ->
            Engine.Steps
              (List.to_seq rs
              |> Seq.map (fun i ->
                     match step_thread ~tracked st i with
                     | Some (st', _) ->
                         let lbl =
                           if labels then
                             label_of ~tracked prog st i
                               (List.hd st.threads.(i).code)
                           else dummy i
                         in
                         Engine.Step (lbl, st')
                     | None ->
                         Engine.Emit (observe prog st Behavior.Fuel_exhausted)
                     | exception Thread_panic ->
                         Engine.Emit (observe prog st Behavior.Panicked)
                     | exception Ownership v ->
                         (* global label: dependent on everything, never
                            slept or ample-pruned *)
                         Engine.Step
                           (Porlabel.sync ~tid:i, { st with poison = Some v }))))
end

module E = Engine.Make (Model)

(* patch the symmetry statistics (the engine itself never sees them) *)
let with_sym_stats sym (stats : Engine.stats) =
  match sym with
  | None -> stats
  | Some s ->
      { stats with
        Engine.sym_groups = Symmetry.n_groups s;
        sym_collapsed = Symmetry.collapsed s }

(** [check_stats ?fuel ?exempt ?initial_owners ?jobs ?por ?sym prog] —
    like {!check}, also returning exploration statistics. *)
let check_stats ?(fuel = 64) ?(exempt = []) ?(initial_owners = [])
    ?(jobs = 1) ?por ?(sym = true) (prog : Prog.t) :
    check_result * Engine.stats =
  let tracked = tracked_set ~shared:(Prog.shared_bases prog) ~exempt in
  (* Symmetry only when nothing is tracked: a tracked base makes
     ownership violations possible, and a violation names a concrete
     tid — collapsing thread-permuted states could then report the
     wrong (permuted) first violation. With [tracked] empty the check
     degenerates to plain SC exploration and canonicalization is
     outcome-preserving. *)
  let symmetry =
    if sym && Base_set.is_empty tracked then Symmetry.detect prog else None
  in
  match
    E.explore ~jobs ?por
      ~ctx:{ Model.prog; tracked; sym = symmetry }
      (initial_state ~fuel ~initial_owners prog)
  with
  | r ->
      let panics, ok =
        Behavior.Outcome_set.partition
          (fun (o : Behavior.outcome) -> o.status = Behavior.Panicked)
          r.E.behaviors
      in
      ( (match Behavior.elements panics with
        | o :: _ -> Drf_kernel_panic o
        | [] -> Drf_ok ok),
        with_sym_stats symmetry r.E.stats )
  | exception Ownership v -> (Drf_violation v, Engine.zero_stats)

(** [check ?fuel ?exempt ?initial_owners ?jobs ?por ?sym prog] explores
    all interleavings under the ownership discipline. Returns the
    behavior set if no pull/push/access ever panics, or the first
    violation found. *)
let check ?fuel ?exempt ?initial_owners ?jobs ?por ?sym (prog : Prog.t) :
    check_result =
  fst (check_stats ?fuel ?exempt ?initial_owners ?jobs ?por ?sym prog)

(** Collect the event traces of every interleaving (no memoization, for
    small programs): input to the SC-trace construction of §4.1. *)
let traces ?(fuel = 16) ?(exempt = []) ?(initial_owners = [])
    ?(max_traces = 512) (prog : Prog.t) : event list list =
  let tracked = tracked_set ~shared:(Prog.shared_bases prog) ~exempt in
  (* Trace collection drops panicking, fuel-exhausted and
     ownership-violating paths, so exceptions are absorbed per
     transition rather than propagated. *)
  let expand (st : state) : (state, event option) Engine.expansion =
    let runnable = ref [] in
    Array.iteri
      (fun i t -> if t.code <> [] then runnable := i :: !runnable)
      st.threads;
    match !runnable with
    | [] -> Engine.Terminal None
    | rs ->
        Engine.Steps
          (List.to_seq rs
          |> Seq.filter_map (fun i ->
                 match step_thread ~tracked st i with
                 | Some (st', ev) -> Some (Engine.Step (ev, st'))
                 | None | (exception Thread_panic) | (exception Ownership _)
                   ->
                     None))
  in
  Engine.enumerate_paths ~expand ~max_paths:max_traces
    (initial_state ~fuel ~initial_owners prog)
  |> List.map (List.filter_map Fun.id)

(* ------------------------------------------------------------------ *)
(* Abstract promise lists (paper Fig. 4) and fulfillment (Fig. 5)      *)
(* ------------------------------------------------------------------ *)

type promise_entry =
  | P_pull of int * string  (** cpu, base *)
  | P_push of int * string
  | P_write of int * string * int  (** cpu, base, value *)

(** Validity of a push/pull promise list per Fig. 4: only free locations
    are pulled, only owned locations are pushed by their owner, and only
    the owner accesses an owned location. *)
let promise_list_valid (entries : promise_entry list) : (unit, string) result =
  let rec go owners = function
    | [] -> Ok ()
    | P_pull (c, b) :: rest -> (
        match List.assoc_opt b owners with
        | Some _ -> Error (Printf.sprintf "CPU %d pulls owned location %s" c b)
        | None -> go ((b, c) :: owners) rest)
    | P_push (c, b) :: rest -> (
        match List.assoc_opt b owners with
        | Some o when o = c ->
            go (List.filter (fun (b', _) -> b' <> b) owners) rest
        | Some o ->
            Error
              (Printf.sprintf "CPU %d pushes %s owned by CPU %d" c b o)
        | None -> Error (Printf.sprintf "CPU %d pushes free location %s" c b))
    | P_write (c, b, _) :: rest -> (
        match List.assoc_opt b owners with
        | Some o when o = c -> go owners rest
        | Some o ->
            Error
              (Printf.sprintf "CPU %d writes %s owned by CPU %d" c b o)
        | None ->
            Error (Printf.sprintf "CPU %d writes un-pulled location %s" c b))
  in
  go [] entries

type fulfill_event =
  | F_pull of string
  | F_push of string
  | F_barrier of Instr.barrier
  | F_acquire_access  (** load-acquire instruction *)
  | F_release_access  (** store-release instruction *)

(** Barrier fulfillment per Fig. 5: walking one CPU's trace in program
    order, every pull promise must be fulfilled by a load barrier (acquire
    access, DMB LD, or DMB full) and every push promise by a store barrier
    (release access, DMB ST, or DMB full); fulfillment must be consistent
    with program order (greedy monotone matching). *)
let fulfills_pull = function
  | F_barrier Instr.Dmb_full | F_barrier Instr.Dmb_ld | F_acquire_access ->
      true
  | _ -> false

let fulfills_push = function
  | F_barrier Instr.Dmb_full | F_barrier Instr.Dmb_st | F_release_access ->
      true
  | _ -> false

let fulfill_valid (trace : fulfill_event list) : (unit, string) result =
  (* A pull must be fulfilled by a barrier adjacent in program order (the
     barrier through which it is issued); we accept the barrier immediately
     before or after the promise event, as in Fig. 7's lock code. *)
  let arr = Array.of_list trace in
  let n = Array.length arr in
  let ok i pred =
    (i > 0 && pred arr.(i - 1)) || (i < n - 1 && pred arr.(i + 1))
  in
  let rec go i =
    if i >= n then Ok ()
    else
      match arr.(i) with
      | F_pull b ->
          if ok i fulfills_pull then go (i + 1)
          else Error (Printf.sprintf "pull of %s not fulfilled by a load barrier" b)
      | F_push b ->
          if ok i fulfills_push then go (i + 1)
          else
            Error (Printf.sprintf "push of %s not fulfilled by a store barrier" b)
      | _ -> go (i + 1)
  in
  go 0
