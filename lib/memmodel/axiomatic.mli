(** An executable Armv8 axiomatic memory model, cross-validating the
    Promising executor.

    Every candidate execution (a control-flow path per thread, a
    reads-from choice per load, a per-location coherence order over the
    stores) is enumerated and kept iff it satisfies the Armv8 axioms:

    - {b internal} (sc-per-location): acyclic(po-loc ∪ rf ∪ co ∪ fr);
    - {b external}: acyclic(ob) with ob = rfe ∪ coe ∪ fre ∪ address/data
      deps ∪ ctrl/ctrl+ISB deps ∪ barrier order (DMB flavours, acquire,
      release, RCsc);
    - {b atomicity}: an RMW's read and write are adjacent in co.

    The axiom definitions and all candidate machinery live in
    {!Candidate}, shared with the SAT-based {!Bmc} backend; this module
    is the explicit enumeration driver. The property tests compare its
    outcome sets against {!Promising.run} on random programs — the
    testable form of the Promising ≡ axiomatic theorem the paper relies
    on. *)

exception Unsupported of string
(** Alias of {!Candidate.Unsupported} (the rebinding makes the
    constructors physically equal, so either name catches both). Raised
    on programs outside the fragment ([Xchg]/[Cas]/[Panic],
    runtime address indices outside the static domain), with the
    offending thread and pc in the message. *)

val run : ?bound:int -> Prog.t -> Behavior.t
(** Behavior set of all axiomatically valid candidate executions, in the
    same observable terms as {!Sc.run} / {!Promising.run}. [bound]
    (default {!Candidate.default_bound}) caps [While] unrolling;
    bound-truncated paths surface as [Fuel_exhausted] outcomes. *)
