(** 128-bit structural state keys for exploration memoization. See the
    interface for the design; the canonical term traversal below is the
    single source of truth shared with {!Fingerprint} via {!sink}. *)

(* ------------------------------------------------------------------ *)
(* Incremental hasher: two independent FNV-style streams over native   *)
(* ints, finalized with a splitmix-style avalanche. 126 effective bits *)
(* make accidental collisions (which would silently merge two distinct *)
(* states) astronomically unlikely; the golden-digest parity tests     *)
(* cross-check the whole corpus against the string-keyed seed.         *)
(* ------------------------------------------------------------------ *)

type t = { h0 : int; h1 : int }

let equal a b = a.h0 = b.h0 && a.h1 = b.h1
let hash a = a.h0

let compare a b =
  let c = Int.compare a.h0 b.h0 in
  if c <> 0 then c else Int.compare a.h1 b.h1

let pp fmt k = Format.fprintf fmt "%016x%016x" k.h0 k.h1

type h = { mutable a : int; mutable b : int }

(* 64-bit FNV prime for the primary stream; a distinct large odd prime
   for the secondary one so the streams never degenerate together. *)
let p0 = 0x100000001b3
let p1 = 0x27d4eb2f165667c5 land max_int

let fresh () = { a = 0x0cf5ad432745937f; b = 0x2545f4914f6cdd1d }

let int h n =
  h.a <- (h.a lxor n) * p0;
  h.b <- (h.b lxor (n + 0x9e3779b9)) * p1

let char h c = int h (Char.code c + 0x100)

let str h s =
  int h (String.length s);
  String.iter
    (fun c ->
      let n = Char.code c in
      h.a <- (h.a lxor n) * p0;
      h.b <- (h.b lxor (n + 1)) * p1)
    s

(* splitmix64-style finalizer, constants truncated to OCaml's 63-bit
   ints (still large odd multipliers, which is all the mix needs) *)
let mix64 x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x3f58476d1ce4e5b9 in
  let x = x lxor (x lsr 27) in
  let x = x * 0x14d049bb133111eb in
  x lxor (x lsr 31)

let finish h =
  let h0 = mix64 h.a in
  (* 0 in the first word is the empty-slot marker of {!Table} *)
  let h0 = if h0 = 0 then 0x9e3779b9 else h0 in
  { h0; h1 = mix64 (h.b + (h.a lsl 1) + 1) }

(* fold a finished key into another stream — used by the symmetry layer
   to combine per-thread sub-keys in orbit-canonical order *)
let absorb h k =
  int h k.h0;
  int h k.h1

(* ------------------------------------------------------------------ *)
(* Canonical term traversal over an abstract byte/int sink.            *)
(* Every encoder is length-prefixed and tag-disambiguated so distinct  *)
(* terms never serialize to the same token stream. With a Buffer sink  *)
(* this reproduces the historical Fingerprint bytes exactly; with a    *)
(* hash sink the tokens feed the two FNV streams directly, with no     *)
(* intermediate string allocation.                                     *)
(* ------------------------------------------------------------------ *)

type sink = {
  put_char : char -> unit;
  put_str : string -> unit;  (** raw bytes, no length prefix *)
  put_int : int -> unit;  (** raw integer token *)
}

let buffer_sink buf =
  { put_char = Buffer.add_char buf;
    put_str = Buffer.add_string buf;
    put_int = (fun n -> Buffer.add_string buf (string_of_int n)) }

let hash_sink h =
  { put_char = char h;
    put_str =
      (fun s ->
        String.iter
          (fun c ->
            let n = Char.code c in
            h.a <- (h.a lxor n) * p0;
            h.b <- (h.b lxor (n + 1)) * p1)
          s);
    put_int = int h }

let emit_str k s =
  k.put_int (String.length s);
  k.put_char ':';
  k.put_str s

let emit_int k n =
  k.put_char 'i';
  k.put_int n;
  k.put_char ';'

let rec emit_vexp k (e : Expr.vexp) =
  match e with
  | Expr.Const n ->
      k.put_char 'C';
      emit_int k n
  | Expr.Reg r ->
      k.put_char 'R';
      emit_str k (Reg.name r)
  | Expr.Add (a, b) ->
      k.put_char '+';
      emit_vexp k a;
      emit_vexp k b
  | Expr.Sub (a, b) ->
      k.put_char '-';
      emit_vexp k a;
      emit_vexp k b
  | Expr.Mul (a, b) ->
      k.put_char '*';
      emit_vexp k a;
      emit_vexp k b
  | Expr.Div (a, b) ->
      k.put_char '/';
      emit_vexp k a;
      emit_vexp k b

let emit_cmp k (c : Expr.cmp) =
  k.put_char
    (match c with
    | Expr.Eq -> '='
    | Expr.Ne -> '!'
    | Expr.Lt -> '<'
    | Expr.Le -> 'l'
    | Expr.Gt -> '>'
    | Expr.Ge -> 'g')

let rec emit_bexp k (e : Expr.bexp) =
  match e with
  | Expr.Bool b ->
      k.put_char 'B';
      k.put_char (if b then '1' else '0')
  | Expr.Cmp (c, a, b) ->
      k.put_char 'c';
      emit_cmp k c;
      emit_vexp k a;
      emit_vexp k b
  | Expr.And (a, b) ->
      k.put_char '&';
      emit_bexp k a;
      emit_bexp k b
  | Expr.Or (a, b) ->
      k.put_char '|';
      emit_bexp k a;
      emit_bexp k b
  | Expr.Not a ->
      k.put_char '~';
      emit_bexp k a

let emit_aexp k (a : Expr.aexp) =
  emit_str k a.Expr.abase;
  emit_vexp k a.Expr.offset

let emit_order k (o : Instr.order) =
  k.put_char
    (match o with
    | Instr.Plain -> 'p'
    | Instr.Acquire -> 'a'
    | Instr.Release -> 'r'
    | Instr.Acq_rel -> 'x')

let emit_barrier k (b : Instr.barrier) =
  k.put_char
    (match b with
    | Instr.Dmb_full -> 'F'
    | Instr.Dmb_ld -> 'L'
    | Instr.Dmb_st -> 'S'
    | Instr.Isb -> 'I')

let emit_bases k bs =
  emit_int k (List.length bs);
  List.iter (emit_str k) bs

let rec emit_instr k (i : Instr.t) =
  match i with
  | Instr.Load (r, a, o) ->
      k.put_str "ld";
      emit_str k (Reg.name r);
      emit_aexp k a;
      emit_order k o
  | Instr.Store (a, e, o) ->
      k.put_str "st";
      emit_aexp k a;
      emit_vexp k e;
      emit_order k o
  | Instr.Faa (r, a, e, o) ->
      k.put_str "fa";
      emit_str k (Reg.name r);
      emit_aexp k a;
      emit_vexp k e;
      emit_order k o
  | Instr.Xchg (r, a, e, o) ->
      k.put_str "xc";
      emit_str k (Reg.name r);
      emit_aexp k a;
      emit_vexp k e;
      emit_order k o
  | Instr.Cas (r, a, exp, des, o) ->
      k.put_str "cs";
      emit_str k (Reg.name r);
      emit_aexp k a;
      emit_vexp k exp;
      emit_vexp k des;
      emit_order k o
  | Instr.Barrier b ->
      k.put_str "ba";
      emit_barrier k b
  | Instr.Move (r, e) ->
      k.put_str "mv";
      emit_str k (Reg.name r);
      emit_vexp k e
  | Instr.If (c, t, e) ->
      k.put_str "if";
      emit_bexp k c;
      emit_instrs k t;
      emit_instrs k e
  | Instr.While (c, body) ->
      k.put_str "wh";
      emit_bexp k c;
      emit_instrs k body
  | Instr.Pull bs ->
      k.put_str "pl";
      emit_bases k bs
  | Instr.Push bs ->
      k.put_str "ps";
      emit_bases k bs
  | Instr.Tlbi None -> k.put_str "t*"
  | Instr.Tlbi (Some a) ->
      k.put_str "ta";
      emit_aexp k a
  | Instr.Panic -> k.put_str "pa"
  | Instr.Nop -> k.put_str "np"

and emit_instrs k is =
  emit_int k (List.length is);
  List.iter (emit_instr k) is

let emit_loc k (l : Loc.t) =
  emit_str k (Loc.base l);
  emit_int k (Loc.index l)

(* Hasher-direct conveniences for the model state-key hot paths. These
   need not match the Buffer byte encoding — only be injective enough —
   so scalars mix as single words instead of decimal tokens. *)

let loc h (l : Loc.t) =
  str h (Loc.base l);
  int h (Loc.index l)

let instrs h is = emit_instrs (hash_sink h) is

(* ------------------------------------------------------------------ *)
(* Open-addressing hash table keyed on the 128-bit keys.               *)
(* Keys live unboxed in a flat int array (two words per slot, first    *)
(* word 0 = empty); values in a parallel array. Linear probing, grow   *)
(* at 3/4 load.                                                        *)
(* ------------------------------------------------------------------ *)

module Table = struct
  type key = t

  type 'a table = {
    dummy : 'a;
    mutable keys : int array;  (* 2 * cap; slot i at indices 2i, 2i+1 *)
    mutable vals : 'a array;  (* cap *)
    mutable size : int;
    mutable mask : int;  (* cap - 1; cap is a power of two *)
  }

  type 'a t = 'a table

  let rec pow2 n c = if c >= n then c else pow2 n (c * 2)

  let create ?(initial = 1024) ~dummy () =
    let cap = pow2 (max 16 initial) 16 in
    { dummy;
      keys = Array.make (2 * cap) 0;
      vals = Array.make cap dummy;
      size = 0;
      mask = cap - 1 }

  let length t = t.size
  let capacity t = t.mask + 1

  (* slot of [key] in [keys]: its index if present, else the first free
     slot of its probe sequence *)
  let probe keys mask (key : key) =
    let rec go i =
      let k0 = Array.unsafe_get keys (2 * i) in
      if k0 = 0 then i
      else if k0 = key.h0 && Array.unsafe_get keys ((2 * i) + 1) = key.h1
      then i
      else go ((i + 1) land mask)
    in
    go (key.h0 land mask)

  let grow t =
    let cap = (t.mask + 1) * 2 in
    let keys = Array.make (2 * cap) 0 in
    let vals = Array.make cap t.dummy in
    let mask = cap - 1 in
    for i = 0 to t.mask do
      let h0 = t.keys.(2 * i) in
      if h0 <> 0 then begin
        let j = probe keys mask { h0; h1 = t.keys.((2 * i) + 1) } in
        keys.(2 * j) <- h0;
        keys.((2 * j) + 1) <- t.keys.((2 * i) + 1);
        vals.(j) <- t.vals.(i)
      end
    done;
    t.keys <- keys;
    t.vals <- vals;
    t.mask <- mask

  let find_or_add t (key : key) v =
    let i = probe t.keys t.mask key in
    if Array.unsafe_get t.keys (2 * i) <> 0 then `Found t.vals.(i)
    else begin
      t.keys.(2 * i) <- key.h0;
      t.keys.((2 * i) + 1) <- key.h1;
      t.vals.(i) <- v;
      t.size <- t.size + 1;
      if t.size * 4 > (t.mask + 1) * 3 then grow t;
      `Added
    end

  let update t (key : key) v =
    let i = probe t.keys t.mask key in
    if Array.unsafe_get t.keys (2 * i) <> 0 then t.vals.(i) <- v

  let mem t key =
    let i = probe t.keys t.mask key in
    Array.unsafe_get t.keys (2 * i) <> 0
end
