(** Litmus-test harness.

    A litmus test is a DSL program plus an "exists" clause — a predicate on
    final observable values that should be unreachable on SC but (for the
    paper's buggy examples) reachable on relaxed Arm. Running a test
    explores the program exhaustively under both {!Sc} and {!Promising} and
    reports the two behavior sets, whether the clause is satisfiable under
    each, and the relaxed-only behaviors. *)

type t = {
  prog : Prog.t;
  description : string;
  exists : (Prog.observable -> int option) -> bool;
      (** the interesting (usually: buggy) final condition *)
  expect_sc : bool;  (** clause satisfiable under SC? *)
  expect_rm : bool;  (** clause satisfiable under Promising Arm? *)
  rm_config : Promising.config option;
      (** per-test exploration budget (loop fuel, promise budget) *)
}

type result = {
  test : t;
  sc : Behavior.t;
  rm : Behavior.t;
  sc_sat : bool;  (** exists-clause satisfiable under SC *)
  rm_sat : bool;  (** exists-clause satisfiable under Promising Arm *)
  sc_panic : bool;
  rm_panic : bool;
  rm_only : Behavior.t;  (** behaviors of RM not visible on SC *)
  as_expected : bool;
  sc_stats : Engine.stats;
  rm_stats : Engine.stats;
}

let make ?(expect_sc = false) ?(expect_rm = true) ?rm_config ~name
    ~description ~exists ?(init = []) ?(shared_bases = []) ~observables
    threads =
  { prog = Prog.make ~init ~shared_bases ~name ~observables threads;
    description;
    exists;
    expect_sc;
    expect_rm;
    rm_config }

let run ?(sc_fuel = 8) ?config ?jobs ?deadline ?por ?sym ?cert_cache
    (test : t) : result =
  let config =
    match (config, test.rm_config) with
    | Some c, _ -> c
    | None, Some c -> c
    | None, None -> Promising.default_config
  in
  (* [cert_cache] overrides whichever config was chosen — the CLI's
     [--no-cert-cache] A/B valve works uniformly across per-test
     configs. *)
  let config =
    match cert_cache with
    | Some b -> { config with Promising.cert_cache = b }
    | None -> config
  in
  let sc, sc_stats =
    Sc.run_stats ~fuel:sc_fuel ?jobs ?deadline ?por ?sym test.prog
  in
  let rm, rm_stats =
    Promising.run_stats ~config ?jobs ?deadline ?por ?sym test.prog
  in
  let sc_sat = Behavior.satisfiable test.exists sc in
  let rm_sat = Behavior.satisfiable test.exists rm in
  let sc_panic = Behavior.any_panic sc in
  let rm_panic = Behavior.any_panic rm in
  { test;
    sc;
    rm;
    sc_sat;
    rm_sat;
    sc_panic;
    rm_panic;
    rm_only = Behavior.diff rm sc;
    as_expected = (sc_sat = test.expect_sc && rm_sat = test.expect_rm);
    sc_stats;
    rm_stats }

let pp_result fmt (r : result) =
  Format.fprintf fmt
    "@[<v>%s: %s@,\
    \  SC : %d outcomes, exists-clause %s%s@,\
    \  RM : %d outcomes, exists-clause %s%s@,\
    \  RM-only behaviors: %d@,\
    \  verdict: %s@]"
    r.test.prog.Prog.name r.test.description
    (Behavior.cardinal r.sc)
    (if r.sc_sat then "SATISFIABLE" else "unreachable")
    (if r.sc_panic then " (panics)" else "")
    (Behavior.cardinal r.rm)
    (if r.rm_sat then "SATISFIABLE" else "unreachable")
    (if r.rm_panic then " (panics)" else "")
    (Behavior.cardinal r.rm_only)
    (if r.as_expected then "as expected" else "UNEXPECTED")
