(** Litmus-test harness: a DSL program plus an "exists" clause — a final
    condition that should be unreachable on SC but (for the paper's buggy
    examples) reachable on relaxed Arm. Running a test explores the
    program exhaustively under {!Sc} and {!Promising} and reports both
    behavior sets, clause satisfiability under each, and the relaxed-only
    behaviors. *)

type t = {
  prog : Prog.t;
  description : string;
  exists : (Prog.observable -> int option) -> bool;
  expect_sc : bool;  (** clause satisfiable under SC? *)
  expect_rm : bool;  (** clause satisfiable under Promising Arm? *)
  rm_config : Promising.config option;
      (** per-test exploration budget (loop fuel, promise budget) *)
}

type result = {
  test : t;
  sc : Behavior.t;
  rm : Behavior.t;
  sc_sat : bool;
  rm_sat : bool;
  sc_panic : bool;
  rm_panic : bool;
  rm_only : Behavior.t;  (** behaviors of RM not visible on SC *)
  as_expected : bool;
  sc_stats : Engine.stats;  (** SC exploration statistics *)
  rm_stats : Engine.stats;  (** Promising exploration statistics *)
}

val make :
  ?expect_sc:bool ->
  ?expect_rm:bool ->
  ?rm_config:Promising.config ->
  name:string ->
  description:string ->
  exists:((Prog.observable -> int option) -> bool) ->
  ?init:(Loc.t * int) list ->
  ?shared_bases:string list ->
  observables:Prog.observable list ->
  Prog.thread list ->
  t

val run :
  ?sc_fuel:int -> ?config:Promising.config -> ?jobs:int ->
  ?deadline:float -> ?por:bool -> ?sym:bool -> ?cert_cache:bool -> t ->
  result
(** [jobs] fans both explorations across that many domains (identical
    behavior sets; see {!Engine}). [deadline] (absolute time) cancels
    both explorations when it passes; partial results carry
    [stats.budget_hit]. [por] (default on) applies partial-order
    reduction to the SC side — identical behavior set, fewer states.
    [sym] (default on) applies thread-symmetry reduction ({!Symmetry})
    to both sides — identical behavior sets, fewer states on programs
    with interchangeable threads (the [--no-sym] A/B valve).
    [cert_cache] overrides the chosen config's certification-memoization
    flag (the [--no-cert-cache] A/B valve) — identical behavior set
    either way. *)
val pp_result : Format.formatter -> result -> unit
