(** The push/pull Promising model (paper §4.1).

    {b Ownership-instrumented execution}: the DRF-Kernel condition is
    checked by running a program under SC interleaving semantics while
    interpreting the ghost [Pull]/[Push] annotations — the machine panics
    when pulling an owned base, pushing a non-owned base, or accessing a
    tracked shared base without owning it. A program satisfies DRF-Kernel
    iff no interleaving panics.

    {b Promise-list validity} (paper Fig. 4) and {b barrier fulfillment}
    (Fig. 5) are standalone validators over abstract push/pull promise
    lists and per-CPU fulfillment traces. *)

type violation = {
  v_tid : int;
  v_base : string;
  v_kind : [ `Pull_owned | `Push_not_owned | `Access_not_owned ];
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** A recorded event of one interleaved execution (input to the
    {!Vrm.Partial_order} SC-trace construction). *)
type event =
  | Ev_read of int * Loc.t * int  (** tid, loc, value *)
  | Ev_write of int * Loc.t * int
  | Ev_rmw of int * Loc.t * int * int  (** tid, loc, old, new *)
  | Ev_pull of int * string list
  | Ev_push of int * string list
  | Ev_barrier of int * Instr.barrier
  | Ev_tlbi of int * Loc.t option  (** tid, invalidated entry; [None] = all *)

val event_tid : event -> int

type check_result =
  | Drf_ok of Behavior.t
  | Drf_violation of violation
  | Drf_kernel_panic of Behavior.outcome
      (** the program itself panicked on some SC path — reported
          separately from ownership violations *)

val check :
  ?fuel:int ->
  ?exempt:string list ->
  ?initial_owners:(string * int) list ->
  ?jobs:int ->
  ?por:bool ->
  ?sym:bool ->
  Prog.t ->
  check_result
(** Explore all interleavings under the ownership discipline. [exempt]
    lists bases excluded from tracking (synchronization-method internals,
    page tables — the condition's side clause); [initial_owners] seeds
    ownership held at fragment entry (e.g. a vCPU context the running CPU
    claimed earlier). [jobs] fans the search across that many domains via
    the shared {!Engine}. [por] (default on) applies partial-order
    reduction over ownership-aware footprints: violating transitions
    carry a global footprint and are never pruned, so the
    ok/violation/panic classification is identical either way. [sym]
    (default on) applies thread-symmetry reduction ({!Symmetry}) — but
    only when the tracked set is empty, where violations are impossible
    and [owners] is constant; with tracked bases present the checker
    always runs concrete, so the first violation reported is never a
    thread-permuted alias of the real one. *)

val check_stats :
  ?fuel:int ->
  ?exempt:string list ->
  ?initial_owners:(string * int) list ->
  ?jobs:int ->
  ?por:bool ->
  ?sym:bool ->
  Prog.t ->
  check_result * Engine.stats
(** Like {!check}, also returning exploration statistics (zero when the
    search was aborted by a violation). *)

val traces :
  ?fuel:int ->
  ?exempt:string list ->
  ?initial_owners:(string * int) list ->
  ?max_traces:int ->
  Prog.t ->
  event list list
(** Event traces of interleavings (unmemoized; small programs only). *)

(** {2 Abstract promise lists (Fig. 4) and fulfillment (Fig. 5)} *)

type promise_entry =
  | P_pull of int * string  (** cpu, base *)
  | P_push of int * string
  | P_write of int * string * int  (** cpu, base, value *)

val promise_list_valid : promise_entry list -> (unit, string) result
(** Only free locations pulled; only owned locations pushed by their
    owner; only the owner accesses an owned location. *)

type fulfill_event =
  | F_pull of string
  | F_push of string
  | F_barrier of Instr.barrier
  | F_acquire_access
  | F_release_access

val fulfills_pull : fulfill_event -> bool
val fulfills_push : fulfill_event -> bool

val fulfill_valid : fulfill_event list -> (unit, string) result
(** Every pull fulfilled by a load barrier, every push by a store
    barrier, consistently with program order. *)
