(** Executable Promising Arm relaxed-memory model.

    An operational model in the style of Promising-ARM (Pulte et al.,
    PLDI 2019) — the model the paper's Coq proofs are carried out on.
    Memory is an append-only list of timestamped messages; threads execute
    in program order but may {e promise} future stores after certifying
    (by a solo run) that they will fulfill them. Relaxed behavior arises
    from promises (other threads observe a store "early") and stale reads
    (a load may return any message not superseded below the thread's read
    floor).

    Per-thread views implement the Armv8 ordering constraints of paper
    §4: per-location coherence, register views for data and address
    dependencies, control views that order stores but not loads (which is
    what lets Example 2's loads speculate), floor-raising for barriers and
    acquire/release — including the RCsc [L];po;[A] ordering.

    Documented simplifications (none affecting the kernel corpus): RMWs
    are not promotable and always read the coherence-latest message. The
    executor is exhaustive up to the {!config} bounds; see {!Axiomatic}
    for the cross-validation against the Armv8 axiomatic model. *)

type config = {
  loop_fuel : int;  (** max loop iterations per thread *)
  max_promises : int;  (** promise budget per thread *)
  cert_depth : int;  (** max solo steps during certification *)
  max_states : int;  (** exploration safety valve *)
  strict_certification : bool;
      (** re-certify outstanding promises at every step (the letter of the
          Promising semantics); the lazy default prunes unfulfillable
          paths at the end — outcome-equivalent, cheaper *)
  cert_cache : bool;
      (** memoize certification verdicts within one exploration, keyed on
          everything [certifiable] reads (shared memory, the certifying
          thread's state, other threads' outstanding promises) —
          verdict-preserving, so the behavior set is identical either
          way; on by default, [--no-cert-cache] for A/B runs. Hit/call
          counts surface as {!Engine.stats} [cert_hits]/[cert_calls]. *)
}

val default_config : config

exception State_budget_exhausted

(** One line of a witness schedule: which CPU did what. *)
type step = {
  s_tid : int;  (** thread id, as declared in the program *)
  s_what : string;  (** human-readable action *)
}

val pp_step : Format.formatter -> step -> unit
val pp_schedule : Format.formatter -> step list -> unit

val run :
  ?config:config -> ?jobs:int -> ?deadline:float -> ?por:bool ->
  ?sym:bool -> Prog.t -> Behavior.t
(** Explore all Promising Arm executions (bounded by [config]) and return
    the behavior set. [jobs] fans the search across that many domains via
    the shared {!Engine} (identical behavior set). [deadline] (absolute
    [Unix.gettimeofday] time) cancels the search when it passes. [por]
    (default on) applies sleep-set/ample partial-order reduction over the
    certification-aware {!Porlabel} footprints — same behavior set, fewer
    states; it is forced off under [strict_certification], where pruned
    orders could die on mid-path certification checks that the explored
    order misses. [sym] (default on) applies thread-symmetry reduction
    ({!Symmetry}): states differing only by a permutation of
    interchangeable threads (message [wtid]s remapped consistently,
    timestamps untouched) intern once — same behavior set, up to N!
    fewer states; also forced off under [strict_certification]. *)

val run_stats :
  ?config:config -> ?jobs:int -> ?deadline:float -> ?por:bool ->
  ?sym:bool -> Prog.t -> Behavior.t * Engine.stats
(** Like {!run}, also returning exploration statistics. *)

val run_with_witnesses :
  ?config:config ->
  ?jobs:int ->
  ?deadline:float ->
  ?por:bool ->
  ?sym:bool ->
  Prog.t ->
  Behavior.t * (Behavior.outcome * step list) list
(** Like {!run}, additionally returning, for each distinct outcome, the
    first schedule (per-CPU steps, promises included) that produced it. *)

val run_full :
  ?config:config ->
  ?jobs:int ->
  ?deadline:float ->
  ?por:bool ->
  ?sym:bool ->
  Prog.t ->
  Behavior.t * (Behavior.outcome * step list) list * Engine.stats
(** Behaviors, witnesses and statistics in one exploration. *)

val key_microbench :
  ?config:config -> iters:int -> Prog.t -> float * float * int
(** [key_microbench ~iters prog] samples up to 512 distinct reachable
    states of [prog] and times [iters] rounds of computing every state's
    key under (a) the legacy string-based keying and (b) the interned
    128-bit {!Statekey} hashing. Returns
    [(legacy_seconds, interned_seconds, sample_size)]. Bench-only. *)
