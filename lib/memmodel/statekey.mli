(** 128-bit structural state keys and the interning table built on them.

    The exploration engine memoizes visited states. Historically each
    model rendered its state to a string ([key : state -> string], built
    with [Buffer]/[Printf]/[Marshal]) and the engine deduplicated in a
    [Hashtbl] over those strings — megabytes of short-lived garbage per
    run. This module replaces that path:

    - {!h} is an incremental hasher: two independent FNV-style streams
      over native ints with a splitmix-style finalizer, yielding a
      126-bit {!t}. Models fold their state components into it directly,
      with no intermediate string.
    - {!Table} is an open-addressing hash table keyed on {!t}, storing
      the two key words unboxed in a flat [int array] — no per-entry
      allocation on the dedup hot path.

    Keying by hash instead of by content is hash compaction: a collision
    would silently merge two distinct states. With 126 well-mixed bits
    the probability is astronomically small for the state counts the
    engine reaches (< 1e-20 at 10^8 states); the golden-digest parity
    tests in [test/test_engine.ml] cross-check every corpus entry
    against the string-keyed seed behavior sets.

    This module also owns the canonical term traversal (instructions,
    expressions, locations) over an abstract {!sink}, shared by
    {!Fingerprint} (Buffer sink, byte-stable cache digests) and the
    model key functions (hash sink, no allocation). One traversal, two
    consumers — the encodings cannot drift apart. *)

type t
(** A 128-bit structural key (two 63-bit words, both avalanche-mixed). *)

val equal : t -> t -> bool
val hash : t -> int

val compare : t -> t -> int
(** Total order on keys (lexicographic on the two words). {!Symmetry}
    sorts per-thread sub-keys under it to pick a deterministic orbit
    representative. *)

val pp : Format.formatter -> t -> unit

(** {1 Incremental hashing} *)

type h
(** In-progress hash state. Not thread-safe; create one per key. *)

val fresh : unit -> h
val int : h -> int -> unit
val char : h -> char -> unit

val str : h -> string -> unit
(** Length-prefixed, so [str h "ab"; str h "c"] and [str h "a"; str h
    "bc"] produce different keys. *)

val finish : h -> t

val absorb : h -> t -> unit
(** Fold a finished key into an in-progress hash — how the symmetry
    layer combines per-thread sub-keys in orbit-canonical order. *)

(** {1 Canonical term traversal}

    The emitters below serialize DSL terms into a {!sink} using the
    historical length-prefixed, tag-disambiguated token encoding (see
    {!Fingerprint} for the stability contract). *)

type sink = {
  put_char : char -> unit;
  put_str : string -> unit;  (** raw bytes, no length prefix *)
  put_int : int -> unit;  (** raw integer token *)
}

val buffer_sink : Buffer.t -> sink
(** Writes the decimal/byte rendering used by {!Fingerprint} — the
    historical, digest-stable encoding. *)

val hash_sink : h -> sink
(** Feeds tokens straight into the two hash streams (ints mix as single
    words, not decimal strings). *)

val emit_str : sink -> string -> unit
val emit_int : sink -> int -> unit
val emit_vexp : sink -> Expr.vexp -> unit
val emit_bexp : sink -> Expr.bexp -> unit
val emit_aexp : sink -> Expr.aexp -> unit
val emit_bases : sink -> string list -> unit
val emit_instr : sink -> Instr.t -> unit
val emit_instrs : sink -> Instr.t list -> unit
val emit_loc : sink -> Loc.t -> unit

(** {1 Hasher-direct conveniences} — hot-path helpers for model key
    functions. *)

val loc : h -> Loc.t -> unit
val instrs : h -> Instr.t list -> unit

(** {1 Interning table} *)

module Table : sig
  type key = t

  type 'a t
  (** Open-addressing (linear probing) table from {!key} to ['a]. Not
      thread-safe; the engine stripes several tables behind mutexes for
      shared parallel search. *)

  val create : ?initial:int -> dummy:'a -> unit -> 'a t
  (** [dummy] fills unoccupied value slots (never returned for a present
      key). *)

  val length : 'a t -> int
  (** Number of keys present — the occupancy the engine reports per
      seen-set stripe. *)

  val capacity : 'a t -> int
  (** Current slot count (a power of two; doubles on growth). Exposed so
      the stripe-stability test can force growth and assert that stripe
      assignment — which derives from {!val-hash} alone, never from
      capacity — is unaffected. *)

  val find_or_add : 'a t -> key -> 'a -> [ `Added | `Found of 'a ]
  (** One probe: if [key] is absent, bind it to the given value and
      return [`Added]; otherwise return the existing binding. *)

  val update : 'a t -> key -> 'a -> unit
  (** Rebind an existing key; no-op if absent. *)

  val mem : 'a t -> key -> bool
end
