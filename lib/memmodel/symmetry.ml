(** Thread-symmetry reduction: quotient the explored state space by
    permutations of interchangeable threads. See the interface for the
    soundness argument; this file owns the two mechanisms:

    - {e detection}: partition the program's threads into symmetry
      groups — maximal sets of threads whose instruction streams have
      identical canonical encodings (the {!Statekey.emit_instrs} bytes
      that {!Fingerprint} is built from) and that are not distinguished
      by a per-thread [Obs_reg] observable;
    - {e orbit canonicalization}: given one 128-bit sub-key per thread
      summarizing everything thread-local about the current state, sort
      the sub-keys of each group and visit threads in that order, so
      every member of a permutation orbit hashes to the same
      {!Statekey.t} and interns as one seen-set entry. *)

type t = {
  groups : int array array;
      (* each group: thread indices (array positions, not declared
         tids), sorted ascending, length >= 2; groups sorted by first
         member *)
  group_of : int array;  (* thread index -> group id, or -1 if ungrouped *)
  collapsed : int Atomic.t;
      (* arrivals whose thread orientation was rewritten to the orbit
         representative (atomic: keys are computed from every domain) *)
}

let n_groups s = Array.length s.groups
let groups s = s.groups
let grouped s i = i >= 0 && i < Array.length s.group_of && s.group_of.(i) >= 0
let collapsed s = Atomic.get s.collapsed

(* Canonical byte encoding of one thread's instruction stream — the
   same tokens Fingerprint feeds to md5, so "identical code" here means
   exactly "identical program fingerprint contribution". *)
let thread_bytes (th : Prog.thread) =
  let buf = Buffer.create 128 in
  Statekey.emit_instrs (Statekey.buffer_sink buf) th.Prog.code;
  Buffer.contents buf

let detect (prog : Prog.t) : t option =
  let threads = Array.of_list prog.Prog.threads in
  let n = Array.length threads in
  (* A thread named by an Obs_reg observable is individually observed:
     collapsing it with a twin would conflate distinct outcomes. *)
  let observed =
    List.filter_map
      (function Prog.Obs_reg (tid, _) -> Some tid | Prog.Obs_loc _ -> None)
      prog.Prog.observables
  in
  let buckets : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    if not (List.mem threads.(i).Prog.tid observed) then begin
      let b = thread_bytes threads.(i) in
      let prev = try Hashtbl.find buckets b with Not_found -> [] in
      Hashtbl.replace buckets b (i :: prev)
    end
  done;
  let groups =
    Hashtbl.fold
      (fun _ members acc ->
        if List.length members >= 2 then Array.of_list members :: acc
        else acc)
      buckets []
  in
  (* Hashtbl.fold order is unspecified; sort for a deterministic layout
     (members are already ascending from the downto loop). *)
  let groups =
    Array.of_list (List.sort (fun a b -> compare a.(0) b.(0)) groups)
  in
  if Array.length groups = 0 then None
  else begin
    let group_of = Array.make n (-1) in
    Array.iteri
      (fun g members -> Array.iter (fun i -> group_of.(i) <- g) members)
      groups;
    Some { groups; group_of; collapsed = Atomic.make 0 }
  end

(* ------------------------------------------------------------------ *)
(* Orbit canonicalization                                              *)
(* ------------------------------------------------------------------ *)

(* [order s sub] returns [ord] with [ord.(p)] = the thread index that
   occupies canonical slot [p]: the identity outside groups; inside each
   group, members reordered by ascending sub-key. Two states that differ
   by a within-group permutation produce the same multiset of sub-keys
   per group, hence the same canonical sequence [sub.(ord.(0)); ...].
   Bumps [collapsed] when the result is not the identity — i.e. the
   state arrived in a non-representative orientation. *)
let order s (sub : Statekey.t array) : int array =
  let ord = Array.init (Array.length sub) (fun i -> i) in
  let moved = ref false in
  Array.iter
    (fun members ->
      let sorted = Array.copy members in
      Array.sort (fun a b -> Statekey.compare sub.(a) sub.(b)) sorted;
      Array.iteri
        (fun k slot ->
          if sorted.(k) <> slot then moved := true;
          ord.(slot) <- sorted.(k))
        members)
    s.groups;
  if !moved then Atomic.incr s.collapsed;
  ord

(* inverse permutation: [rank.(i)] = canonical slot of thread [i] —
   what Promising relabels message writer ids through *)
let inverse (ord : int array) : int array =
  let rank = Array.make (Array.length ord) 0 in
  Array.iteri (fun p i -> rank.(i) <- p) ord;
  rank

(* The whole canonical tail of a key for models whose shared state
   carries no thread indices (SC, TSO, push/pull): absorb the
   per-thread sub-keys in canonical order. *)
let fold_threads s (h : Statekey.h) (sub : Statekey.t array) : unit =
  let ord = order s sub in
  Array.iter (fun i -> Statekey.absorb h sub.(i)) ord

let pp fmt s =
  Format.fprintf fmt "@[<h>%d group(s):" (Array.length s.groups);
  Array.iter
    (fun members ->
      Format.fprintf fmt " {";
      Array.iteri
        (fun k i -> Format.fprintf fmt "%s%d" (if k > 0 then "," else "") i)
        members;
      Format.fprintf fmt "}")
    s.groups;
  Format.fprintf fmt "@]"
