(** Executable Promising Arm relaxed-memory model.

    This is an operational model in the style of Promising-ARM (Pulte et
    al., PLDI 2019), the model the paper's Coq proofs are carried out on.
    Memory is an append-only list of timestamped {e messages}; each thread
    executes its instructions {e in program order} but may {e promise}
    future stores (append the message before executing the store), provided
    it can {e certify} the promise — demonstrate, by running solo, that it
    will fulfill it. Relaxed behavior arises from (a) promises, which let
    other threads observe a store "early", and (b) stale reads, since a load
    may return any coherent message not superseded below the thread's read
    floor.

    Per-thread views implement the four Armv8 ordering constraints the
    paper lists in §4:
    {ul
    {- data dependencies: registers carry views; a store's message timestamp
       must exceed the view of its data;}
    {- address dependencies: likewise for the address computation, and the
       read floor of a load includes its address view;}
    {- coherence: per-location [coh] timestamps forbid same-location
       reordering;}
    {- barriers: DMB instructions and acquire/release accesses raise the
       read/write floors [vrnew]/[vwnew].}}

    Control dependencies order stores (via [vctrl]) but not loads, which is
    what permits the load speculation of the paper's Example 2.

    Simplifications relative to full Promising-ARM, none of which affect
    the kernel-code corpus verified here: RMWs (ticket-lock
    [fetch_and_inc]) are not promotable and always read the
    coherence-latest message (their success case); there is no
    instruction-fetch or mixed-size machinery. *)

type message = {
  mloc : Loc.t;
  mval : int;
  ts : int;  (** position in the append-only memory; 0 = initial *)
  wtid : int;  (** writing thread; -1 for initial messages *)
}

type tstate = {
  code : Instr.t list;
  regs : (int * int) Reg.Map.t;  (** value, view *)
  coh : int Loc.Map.t;  (** per-location coherence timestamp *)
  vrnew : int;  (** read floor (acquire loads, DMB LD/full) *)
  vwnew : int;  (** write floor (DMB ST/LD/full, acquire loads) *)
  vctrl : int;  (** control-dependency view: orders stores only *)
  vrmax : int;  (** join of views of executed reads (for DMB LD) *)
  vwmax : int;  (** join of timestamps of executed writes (for DMB ST) *)
  vall : int;  (** join of everything (for DMB full, release stores) *)
  vrel : int;
      (** timestamp of this thread's latest release write: acquire loads
          read no older than it (Armv8 release/acquire is RCsc — the
          [L];po;[A] ordering of the axiomatic model) *)
  fuel : int;
  promise_budget : int;
  promises : int list;  (** timestamps of outstanding promises *)
}

type state = {
  mem : message list;  (** newest first *)
  next_ts : int;
  threads : tstate array;
}

type config = {
  loop_fuel : int;  (** max loop iterations per thread *)
  max_promises : int;  (** max outstanding+fulfilled promises per thread *)
  cert_depth : int;  (** max solo steps during certification *)
  max_states : int;  (** exploration safety valve *)
  strict_certification : bool;
      (** re-certify every thread's outstanding promises at every step (the
          letter of the Promising semantics) instead of pruning
          unfulfillable paths at the end — same final outcomes, higher
          cost; kept as a cross-check of the lazy default *)
  cert_cache : bool;
      (** memoize certification verdicts per equivalence class (shared
          memory + certifying thread + other threads' outstanding
          promises) for the duration of one exploration; verdict-
          preserving, so the behavior set is identical either way —
          disable for A/B runs ([--no-cert-cache]) *)
}

let default_config =
  { loop_fuel = 24; max_promises = 2; cert_depth = 64;
    max_states = 2_000_000; strict_certification = false;
    cert_cache = true }

exception Thread_panic
exception State_budget_exhausted

let lookup_reg regs r =
  match Reg.Map.find_opt r regs with Some v -> v | None -> (0, 0)

let coh_of t loc =
  match Loc.Map.find_opt loc t.coh with Some v -> v | None -> 0

(* Messages on [loc], including a virtual initial message at ts 0. *)
let messages_on st init_val loc =
  let explicit = List.filter (fun m -> Loc.equal m.mloc loc) st.mem in
  if List.exists (fun m -> m.ts = 0) explicit then explicit
  else explicit @ [ { mloc = loc; mval = init_val loc; ts = 0; wtid = -1 } ]

(* Latest message on [loc] with ts <= floor: its ts is the staleness bound. *)
let latest_before st init_val loc floor =
  List.fold_left
    (fun acc m -> if m.ts <= floor && m.ts > acc then m.ts else acc)
    0
    (messages_on st init_val loc)

(** Readable messages for a load of [loc] by thread [i]: coherent
    ([ts >= coh]), not superseded below the floor, and not one of the
    thread's own unfulfilled promises. *)
let readable st init_val (t : tstate) loc ~floor =
  let lb = latest_before st init_val loc floor in
  let lo = max (coh_of t loc) lb in
  List.filter
    (fun m -> m.ts >= lo && not (List.mem m.ts t.promises))
    (messages_on st init_val loc)

type step_result =
  | Next of state * Porlabel.t
      (** successor plus its POR footprint (a shared dummy unless the
          caller asked for footprints) *)
  | Fuel_out
  | Stuck  (** no legal transition, e.g. no fulfillable store slot *)

(** One line of a witness schedule: which CPU did what. *)
type step = {
  s_tid : int;  (** thread id (as declared in the program) *)
  s_what : string;  (** human-readable action *)
}

let pp_step fmt s = Format.fprintf fmt "CPU %d: %s" s.s_tid s.s_what

let pp_schedule fmt steps =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_step fmt steps

let set_thread st i t' =
  let threads = Array.copy st.threads in
  threads.(i) <- t';
  { st with threads }

(* Shared placeholder footprint for solo runs and label-free search:
   never consulted, never compared. *)
let dummy_fp = Porlabel.empty ~tid:(-1)

(* Atomic read-modify-writes (FAA, XCHG, CAS) read the coherence-latest
   message and, when [new_value] yields a write, append the new message
   adjacent to it (the append-only memory keeps the pair per-location
   adjacent forever). Reading an unfulfilled promise is refused: the pair
   could no longer be kept atomic. A CAS whose [new_value] is [None]
   (comparison failed) degenerates to a read of the latest message.

   Footprints: the write case allocates a timestamp ([alloc]) and both
   appends to and depends on the base's message history ([cert_write] —
   it moves the coherence-latest message other threads' RMWs and
   certifications look at; [cert_read] — its own enabledness depends on
   whether the latest message is anyone's outstanding promise, which a
   fulfil of the same base can change). *)
let rmw_step ~fp st init_val i t rest ~loc ~va ~vd ~ord ~dst ~new_value :
    step_result list =
  let msgs = messages_on st init_val loc in
  let latest =
    List.fold_left (fun acc m -> if m.ts > acc.ts then m else acc)
      (List.hd msgs) msgs
  in
  let is_promise =
    Array.exists (fun th -> List.mem latest.ts th.promises) st.threads
  in
  if is_promise then [ Stuck ]
  else
    let acq = ord = Instr.Acquire || ord = Instr.Acq_rel in
    let rel = ord = Instr.Release || ord = Instr.Acq_rel in
    match new_value latest.mval with
    | Some v ->
        let ts = st.next_ts in
        let m = { mloc = loc; mval = v; ts; wtid = i } in
        let view = max latest.ts (max va vd) in
        let t' =
          { t with
            code = rest;
            regs = Reg.Map.add dst (latest.mval, view) t.regs;
            coh = Loc.Map.add loc ts t.coh;
            vrmax = max t.vrmax view;
            vwmax = max t.vwmax ts;
            vall = max t.vall ts;
            vrel = (if rel then max t.vrel ts else t.vrel);
            vrnew = (if acq then max t.vrnew latest.ts else t.vrnew);
            vwnew = (if acq then max t.vwnew latest.ts else t.vwnew) }
        in
        let lbl =
          if fp then
            { (Porlabel.rmw ~tid:i loc) with
              alloc = true;
              cert_read = [ Loc.base loc ];
              cert_write = [ Loc.base loc ] }
          else dummy_fp
        in
        [ Next
            ( set_thread { st with mem = m :: st.mem; next_ts = ts + 1 } i t',
              lbl ) ]
    | None ->
        let view = max latest.ts (max va vd) in
        let t' =
          { t with
            code = rest;
            regs = Reg.Map.add dst (latest.mval, view) t.regs;
            coh = Loc.Map.add loc (max (coh_of t loc) latest.ts) t.coh;
            vrmax = max t.vrmax view;
            vall = max t.vall view;
            vrnew = (if acq then max t.vrnew latest.ts else t.vrnew);
            vwnew = (if acq then max t.vwnew latest.ts else t.vwnew) }
        in
        let lbl =
          if fp then
            { (Porlabel.read ~tid:i loc) with
              cert_read = [ Loc.base loc ] }
          else dummy_fp
        in
        [ Next (set_thread st i t', lbl) ]

(* Conservative default observability: every register counts as
   observable, so locally-invisible steps are never marked ample unless
   the caller supplies the program's real observation set. *)
let any_reg : Reg.t -> bool = fun _ -> true

(** Successor states of executing the next instruction of thread [i]
    (several for a load: one per readable message). [fp] asks for real
    POR footprints on each successor (solo certification runs leave it
    off and get a shared dummy); [silent_ok] additionally allows
    invisible deterministic steps to claim the singleton-ample property
    — the caller must guarantee the thread has no promise-step siblings
    at this state; [obs] tells which registers observation can see. *)
let step_thread ?(fp = false) ?(silent_ok = false) ?(obs = any_reg)
    (st : state) init_val (i : int) : step_result list =
  let t = st.threads.(i) in
  (* invisible, deterministic, thread-local step *)
  let quiet_lbl () =
    if not fp then dummy_fp
    else if silent_ok then Porlabel.silent ~tid:i
    else Porlabel.empty ~tid:i
  in
  match t.code with
  | [] -> invalid_arg "Promising.step_thread: thread done"
  | instr :: rest -> (
      try
        match instr with
        | Instr.Nop | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _ ->
            [ Next (set_thread st i { t with code = rest }, quiet_lbl ()) ]
        | Instr.Panic -> raise Thread_panic
        | Instr.Move (r, e) ->
            let v, w = Expr.eval_v (lookup_reg t.regs) e in
            let lbl =
              if not fp then dummy_fp
              else if obs r then Porlabel.private_ ~tid:i
              else quiet_lbl ()
            in
            [ Next
                ( set_thread st i
                    { t with code = rest; regs = Reg.Map.add r (v, w) t.regs },
                  lbl ) ]
        | Instr.Barrier b ->
            let t' =
              match b with
              | Instr.Dmb_full ->
                  let v = max t.vall (max t.vrnew t.vwnew) in
                  { t with code = rest; vrnew = v; vwnew = v }
              | Instr.Dmb_ld ->
                  { t with
                    code = rest;
                    vrnew = max t.vrnew t.vrmax;
                    vwnew = max t.vwnew t.vrmax }
              | Instr.Dmb_st ->
                  { t with code = rest; vwnew = max t.vwnew t.vwmax }
              | Instr.Isb -> { t with code = rest; vrnew = max t.vrnew t.vctrl }
            in
            [ Next (set_thread st i t', quiet_lbl ()) ]
        | Instr.Load (r, a, ord) ->
            let loc, va = Expr.eval_addr (lookup_reg t.regs) a in
            let acq_floor =
              if ord = Instr.Acquire || ord = Instr.Acq_rel then t.vrel
              else 0
            in
            let floor = max (max t.vrnew va) acq_floor in
            let choices = readable st init_val t loc ~floor in
            List.map
              (fun m ->
                let view = max m.ts va in
                let t' =
                  { t with
                    code = rest;
                    regs = Reg.Map.add r (m.mval, view) t.regs;
                    coh = Loc.Map.add loc (max (coh_of t loc) m.ts) t.coh;
                    vrmax = max t.vrmax view;
                    vall = max t.vall view;
                    vrnew =
                      (if ord = Instr.Acquire || ord = Instr.Acq_rel then
                         max t.vrnew m.ts
                       else t.vrnew);
                    vwnew =
                      (if ord = Instr.Acquire || ord = Instr.Acq_rel then
                         max t.vwnew m.ts
                       else t.vwnew) }
                in
                (* the read message's timestamp discriminates the choice
                   — intrinsic to the transition, stable across
                   independent other-thread moves *)
                let lbl =
                  if fp then
                    { (Porlabel.read ~tid:i loc) with disc = m.ts }
                  else dummy_fp
                in
                Next (set_thread st i t', lbl))
              choices
        | Instr.Store (a, e, ord) ->
            let loc, va = Expr.eval_addr (lookup_reg t.regs) a in
            let v, vd = Expr.eval_v (lookup_reg t.regs) e in
            let lower = max (coh_of t loc)
                (max va (max vd (max t.vctrl t.vwnew)))
            in
            let is_release = ord = Instr.Release || ord = Instr.Acq_rel in
            let commit ts mem next_ts promises lbl =
              let t' =
                { t with
                  code = rest;
                  coh = Loc.Map.add loc ts t.coh;
                  vwmax = max t.vwmax ts;
                  vall = max t.vall ts;
                  vrel = (if is_release then max t.vrel ts else t.vrel);
                  promises }
              in
              let st' = { st with mem; next_ts } in
              Next (set_thread st' i t', lbl)
            in
            (* fulfill one of our promises... *)
            let fulfills =
              List.filter_map
                (fun p ->
                  match
                    List.find_opt (fun m -> m.ts = p && m.wtid = i) st.mem
                  with
                  | Some m
                    when Loc.equal m.mloc loc && m.mval = v && m.ts > lower
                         && ((not is_release) || m.ts > t.vall) ->
                      (* flips the message's outstanding-promise status:
                         other threads' RMW enabledness and
                         certification keys on this base can change *)
                      let lbl =
                        if fp then
                          { (Porlabel.write ~tid:i loc) with
                            cert_write = [ Loc.base loc ];
                            disc = m.ts }
                        else dummy_fp
                      in
                      Some
                        (commit m.ts st.mem st.next_ts
                           (List.filter (fun q -> q <> p) t.promises)
                           lbl)
                  | _ -> None)
                t.promises
            in
            (* ... or append a fresh message at the end of memory. *)
            let append =
              let ts = st.next_ts in
              let m = { mloc = loc; mval = v; ts; wtid = i } in
              let lbl =
                if fp then
                  { (Porlabel.write ~tid:i loc) with
                    alloc = true;
                    cert_write = [ Loc.base loc ] }
                else dummy_fp
              in
              commit ts (m :: st.mem) (ts + 1) t.promises lbl
            in
            append :: fulfills
        | Instr.Faa (r, a, e, ord) ->
            let loc, va = Expr.eval_addr (lookup_reg t.regs) a in
            let delta, vd = Expr.eval_v (lookup_reg t.regs) e in
            rmw_step ~fp st init_val i t rest ~loc ~va ~vd ~ord ~dst:r
              ~new_value:(fun old -> Some (old + delta))
        | Instr.Xchg (r, a, e, ord) ->
            let loc, va = Expr.eval_addr (lookup_reg t.regs) a in
            let v, vd = Expr.eval_v (lookup_reg t.regs) e in
            rmw_step ~fp st init_val i t rest ~loc ~va ~vd ~ord ~dst:r
              ~new_value:(fun _ -> Some v)
        | Instr.Cas (r, a, expected, desired, ord) ->
            let loc, va = Expr.eval_addr (lookup_reg t.regs) a in
            let exp_v, ve = Expr.eval_v (lookup_reg t.regs) expected in
            let des_v, vd0 = Expr.eval_v (lookup_reg t.regs) desired in
            rmw_step ~fp st init_val i t rest ~loc ~va ~vd:(max ve vd0) ~ord
              ~dst:r
              ~new_value:(fun old -> if old = exp_v then Some des_v else None)
        | Instr.If (cond, br_then, br_else) ->
            let b, vc = Expr.eval_b (lookup_reg t.regs) cond in
            let code = (if b then br_then else br_else) @ rest in
            [ Next
                ( set_thread st i { t with code; vctrl = max t.vctrl vc },
                  quiet_lbl () ) ]
        | Instr.While (cond, body) ->
            let b, vc = Expr.eval_b (lookup_reg t.regs) cond in
            let t = { t with vctrl = max t.vctrl vc } in
            if not b then
              [ Next (set_thread st i { t with code = rest }, quiet_lbl ()) ]
            else if t.fuel <= 0 then [ Fuel_out ]
            else
              [ Next
                  ( set_thread st i
                      { t with
                        code = body @ (Instr.While (cond, body) :: rest);
                        fuel = t.fuel - 1 },
                    quiet_lbl () ) ]
      with Expr.Eval_panic _ -> raise Thread_panic)

(* Human-readable label for the transition [st] -> [st'] taken by thread
   [i] executing [instr]. Loads/stores are annotated with the concrete
   location, value, and message timestamp so witness schedules read like
   the paper's execution diagrams. *)
let describe_step (st : state) (st' : state) (i : int) (instr : Instr.t) :
    string =
  let t = st.threads.(i) and t' = st'.threads.(i) in
  let reg_val r =
    match Reg.Map.find_opt r t'.regs with Some (v, _) -> v | None -> 0
  in
  match instr with
  | Instr.Load (r, a, ord) ->
      let loc, _ = Expr.eval_addr (lookup_reg t.regs) a in
      Format.asprintf "%s := [%a]  (reads %d%s)" (Reg.name r) Loc.pp loc
        (reg_val r)
        (match ord with Instr.Acquire -> ", acquire" | _ -> "")
  | Instr.Store (a, _, ord) ->
      let loc, _ = Expr.eval_addr (lookup_reg t.regs) a in
      let fulfilled = List.length t'.promises < List.length t.promises in
      let m =
        List.find_opt (fun m -> Loc.equal m.mloc loc && m.wtid = i) st'.mem
      in
      Format.asprintf "[%a] := %d%s%s" Loc.pp loc
        (match m with Some m -> m.mval | None -> 0)
        (match ord with Instr.Release -> "  (release)" | _ -> "")
        (if fulfilled then "  (fulfils an earlier promise)" else "")
  | Instr.Faa (r, a, _, _) ->
      let loc, _ = Expr.eval_addr (lookup_reg t.regs) a in
      Format.asprintf "fetch-add [%a] (read %d)" Loc.pp loc (reg_val r)
  | Instr.Xchg (r, a, _, _) ->
      let loc, _ = Expr.eval_addr (lookup_reg t.regs) a in
      Format.asprintf "exchange [%a] (read %d)" Loc.pp loc (reg_val r)
  | Instr.Cas (r, a, _, _, _) ->
      let loc, _ = Expr.eval_addr (lookup_reg t.regs) a in
      Format.asprintf "cas [%a] (read %d)" Loc.pp loc (reg_val r)
  | Instr.Barrier b ->
      Format.asprintf "%s"
        (match b with
        | Instr.Dmb_full -> "dmb ish"
        | Instr.Dmb_ld -> "dmb ishld"
        | Instr.Dmb_st -> "dmb ishst"
        | Instr.Isb -> "isb")
  | Instr.Move (r, _) -> Format.asprintf "%s := <expr>" (Reg.name r)
  | Instr.If _ -> "branch"
  | Instr.While _ -> "loop check"
  | Instr.Pull bs -> Format.asprintf "pull {%s}" (String.concat "," bs)
  | Instr.Push bs -> Format.asprintf "push {%s}" (String.concat "," bs)
  | Instr.Tlbi _ -> "tlbi"
  | Instr.Panic -> "panic"
  | Instr.Nop -> "nop"

(* ------------------------------------------------------------------ *)
(* State keys                                                          *)
(* ------------------------------------------------------------------ *)
(* One canonical encoder for shared memory and for one thread's state;
   the full-state key and the per-thread solo-exploration key are both
   compositions of these two — the historical duplicate key functions
   (full state here, [mem + thread] inside [solo_write_candidates])
   collapsed into one place. *)

let hash_mem h (st : state) =
  Statekey.int h st.next_ts;
  List.iter
    (fun m ->
      Statekey.loc h m.mloc;
      Statekey.int h m.mval;
      Statekey.int h m.ts;
      Statekey.int h m.wtid)
    st.mem

let hash_thread h (t : tstate) =
  Statekey.char h 'T';
  Statekey.int h t.vrnew;
  Statekey.int h t.vwnew;
  Statekey.int h t.vctrl;
  Statekey.int h t.vrmax;
  Statekey.int h t.vwmax;
  Statekey.int h t.vall;
  Statekey.int h t.vrel;
  Statekey.int h t.fuel;
  Statekey.int h t.promise_budget;
  Statekey.int h (Reg.Map.cardinal t.regs);
  Reg.Map.iter
    (fun r (v, w) ->
      Statekey.str h (Reg.name r);
      Statekey.int h v;
      Statekey.int h w)
    t.regs;
  Statekey.int h (Loc.Map.cardinal t.coh);
  Loc.Map.iter
    (fun l c ->
      Statekey.loc h l;
      Statekey.int h c)
    t.coh;
  Statekey.int h (List.length t.promises);
  List.iter (Statekey.int h) t.promises;
  Statekey.instrs h t.code

let state_key (st : state) : Statekey.t =
  let h = Statekey.fresh () in
  hash_mem h st;
  Array.iter (hash_thread h) st.threads;
  Statekey.finish h

(* Orbit-canonical key. Unlike SC/TSO, part of a Promising thread's
   identity lives in {e shared} memory: messages carry the writer's
   thread index [wtid]. Permuting threads i and j maps a state to one
   where their local states are swapped {e and} every [wtid = i]
   becomes [j] (and vice versa), so canonicalization must do the same:

   - the per-thread sub-key covers the thread's local state {e plus}
     the (loc, val, ts) triples of the messages it wrote — two threads
     with identical views but different written-message histories are
     distinguishable (a later promise by one of them certifies
     differently) and must not collapse;
   - the canonical hash relabels each message's [wtid] through the
     orbit rank and hashes threads in orbit order, so both sides of the
     ownership relation are permuted consistently.

   Timestamps themselves are global (positions in the append-only
   memory) and permutation-invariant — they are never remapped. *)
let canonical_key sym (st : state) : Statekey.t =
  let n = Array.length st.threads in
  let sub =
    Array.init n (fun i ->
        let h = Statekey.fresh () in
        hash_thread h st.threads.(i);
        List.iter
          (fun m ->
            if m.wtid = i then begin
              Statekey.loc h m.mloc;
              Statekey.int h m.mval;
              Statekey.int h m.ts
            end)
          st.mem;
        Statekey.finish h)
  in
  let ord = Symmetry.order sym sub in
  let rank = Symmetry.inverse ord in
  let h = Statekey.fresh () in
  Statekey.int h st.next_ts;
  List.iter
    (fun m ->
      Statekey.loc h m.mloc;
      Statekey.int h m.mval;
      Statekey.int h m.ts;
      Statekey.int h (if m.wtid < 0 then m.wtid else rank.(m.wtid)))
    st.mem;
  Array.iter (fun i -> Statekey.absorb h sub.(i)) ord;
  Statekey.finish h

(* key for thread [i]'s solo exploration: shared memory + that thread *)
let thread_key (st : state) i : Statekey.t =
  let h = Statekey.fresh () in
  hash_mem h st;
  hash_thread h st.threads.(i);
  Statekey.finish h

(* The pre-interning key (string digest of a rendered state), kept only
   as the baseline of the bench's key microbenchmark. *)
let legacy_state_key (st : state) : string =
  let buf = Buffer.create 512 in
  List.iter
    (fun m ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d@%d.%d;" (Loc.to_string m.mloc) m.mval m.ts
           m.wtid))
    st.mem;
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "|%d.%d.%d.%d.%d.%d.%d.%d.%d" t.vrnew t.vwnew
           t.vctrl t.vrmax t.vwmax t.vall t.vrel t.fuel t.promise_budget);
      Reg.Map.iter
        (fun r (v, w) ->
          Buffer.add_string buf (Printf.sprintf "%s=%d.%d;" (Reg.name r) v w))
        t.regs;
      Loc.Map.iter
        (fun l c ->
          Buffer.add_string buf (Printf.sprintf "%s^%d;" (Loc.to_string l) c))
        t.coh;
      List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "p%d;" p))
        t.promises;
      Buffer.add_string buf (Marshal.to_string t.code []))
    st.threads;
  Digest.string (Buffer.contents buf)

(* ------------------------------------------------------------------ *)
(* Certification and promise candidates                                *)
(* ------------------------------------------------------------------ *)

(* Solo-run transitions of thread [i]: the architectural steps only (a
   solo run never promises), with panicking paths absorbed — shared
   between certification and the candidate generator. *)
let solo_steps st init_val i =
  try step_thread st init_val i with Thread_panic -> []

(* Store bases syntactically reachable in [code], recursing into branch
   and loop bodies. [Expr.eval_addr] always yields a location on the
   address expression's [abase], so this footprint over-approximates the
   locations any solo run can write: promises are fulfilled by [Store]
   only, hence a promise on a base outside the footprint can never be
   fulfilled, and a footprint-free thread has no promise candidates at
   all. Both prunes are verdict-preserving — they only skip solo
   searches whose outcome is already forced. *)
let rec store_bases acc = function
  | [] -> acc
  | instr :: rest ->
      let acc =
        match instr with
        | Instr.Store (a, _, _) ->
            let b = a.Expr.abase in
            if List.mem b acc then acc else b :: acc
        | Instr.If (_, br_then, br_else) ->
            store_bases (store_bases acc br_then) br_else
        | Instr.While (_, body) -> store_bases acc body
        | _ -> acc
      in
      store_bases acc rest

(** Can thread [i], running solo (no new promises), reach a state with all
    its promises fulfilled, within [depth] steps? *)
let certifiable cfg st init_val i =
  let t0 = st.threads.(i) in
  if t0.promises = [] then true
  else
    let bases = store_bases [] t0.code in
    let fulfillable p =
      match List.find_opt (fun m -> m.ts = p && m.wtid = i) st.mem with
      | Some m -> List.mem (Loc.base m.mloc) bases
      | None -> false
    in
    if not (List.for_all fulfillable t0.promises) then false
    else
      let rec go st depth =
        let t = st.threads.(i) in
        if t.promises = [] then true
        else if depth <= 0 || t.code = [] then false
        else
          List.exists
            (function
              | Next (st', _) -> go st' (depth - 1)
              | Fuel_out | Stuck -> false)
            (solo_steps st init_val i)
      in
      go st cfg.cert_depth

(** Store values thread [i] may produce along some solo run: the candidate
    set for promises. Over-approximate; certification filters. *)
let solo_write_candidates cfg st init_val i =
  if store_bases [] st.threads.(i).code = [] then []
  else begin
    let found = Hashtbl.create 16 in
    let seen = Statekey.Table.create ~initial:256 ~dummy:() () in
    let rec go st depth =
      if depth <= 0 then ()
      else
        let k = thread_key st i in
        match Statekey.Table.find_or_add seen k () with
        | `Found () -> ()
        | `Added -> begin
            let t = st.threads.(i) in
          match t.code with
          | [] -> ()
          | instr :: _ ->
              (match instr with
              | Instr.Store (a, e, _) -> (
                  try
                    let loc, _ = Expr.eval_addr (lookup_reg t.regs) a in
                    let v, _ = Expr.eval_v (lookup_reg t.regs) e in
                    Hashtbl.replace found (loc, v) ()
                  with Expr.Eval_panic _ -> ())
              | _ -> ());
              List.iter
                (function
                  | Next (st', _) -> go st' (depth - 1)
                  | Fuel_out | Stuck -> ())
                (solo_steps st init_val i)
        end
    in
    go st cfg.cert_depth;
    Hashtbl.fold (fun k () acc -> k :: acc) found []
  end

(* ------------------------------------------------------------------ *)
(* Certification memoization                                           *)
(* ------------------------------------------------------------------ *)

(* All bases thread code can address, recursing into branches and loops:
   [Expr.eval_addr] always lands on the address expression's static
   [abase], so a solo run can only ever read or write locations on these
   bases. *)
let rec access_bases acc = function
  | [] -> acc
  | instr :: rest ->
      let add (a : Expr.aexp) acc =
        let b = a.Expr.abase in
        if List.mem b acc then acc else b :: acc
      in
      let acc =
        match instr with
        | Instr.Load (_, a, _) | Instr.Store (a, _, _)
        | Instr.Faa (_, a, _, _) | Instr.Xchg (_, a, _, _)
        | Instr.Cas (_, a, _, _, _) ->
            add a acc
        | Instr.If (_, br_then, br_else) ->
            access_bases (access_bases acc br_then) br_else
        | Instr.While (_, body) -> access_bases acc body
        | _ -> acc
      in
      access_bases acc rest

(* The memo key is a {e canonical projection} of the state onto what a
   solo run of thread [i] can observe. [certifiable]'s verdict is
   invariant under four quotients, and the key hashes the quotient class
   rather than the raw state so every member shares one cache slot:

   - {b footprint}: the solo run only evaluates addresses on the static
     bases of thread [i]'s remaining code, so messages (and coherence
     entries) on other bases are dropped;
   - {b timestamp renaming}: the semantics compares timestamps only by
     order ([<=]/[max]) and fresh timestamps are allocated above every
     existing one, so each timestamp is replaced by its rank within the
     set of timestamps the run can compare (footprint messages, views,
     register views, coherence entries, promises);
   - {b promise ownership}: {!rmw_step} refuses the coherence-latest
     message when {e some} thread holds it as a promise, never caring
     which — other threads collapse to one promised-by-other bit per
     footprint message;
   - {b thread identity}: fulfillment only tests [m.wtid = i], hashed as
     a mine/theirs bit, so structurally equal certification problems on
     different threads share a slot.

   [next_ts] and [promise_budget] are excluded: a solo run never
   promises, and fresh timestamps sit above every ranked one in any
   member of the class. *)
let cert_key (st : state) i : Statekey.t =
  let t = st.threads.(i) in
  let bases = access_bases [] t.code in
  let msgs =
    List.filter (fun m -> List.mem (Loc.base m.mloc) bases) st.mem
  in
  let module Ts = Set.Make (Int) in
  let ts = ref (Ts.singleton 0) in
  let note v = ts := Ts.add v !ts in
  List.iter (fun m -> note m.ts) msgs;
  Loc.Map.iter
    (fun loc v -> if List.mem (Loc.base loc) bases then note v)
    t.coh;
  List.iter note
    [ t.vrnew; t.vwnew; t.vctrl; t.vrmax; t.vwmax; t.vall; t.vrel ];
  Reg.Map.iter (fun _ (_, w) -> note w) t.regs;
  List.iter note t.promises;
  let ranks = Hashtbl.create 64 in
  List.iteri (fun idx v -> Hashtbl.replace ranks v idx) (Ts.elements !ts);
  let rank v = Hashtbl.find ranks v in
  let h = Statekey.fresh () in
  Statekey.char h 'C';
  Statekey.instrs h t.code;
  Statekey.int h t.fuel;
  Statekey.int h (Reg.Map.cardinal t.regs);
  Reg.Map.iter
    (fun r (v, w) ->
      Statekey.str h (Reg.name r);
      Statekey.int h v;
      Statekey.int h (rank w))
    t.regs;
  Loc.Map.iter
    (fun loc v ->
      if List.mem (Loc.base loc) bases then begin
        Statekey.loc h loc;
        Statekey.int h (rank v)
      end)
    t.coh;
  List.iter
    (fun v -> Statekey.int h (rank v))
    [ t.vrnew; t.vwnew; t.vctrl; t.vrmax; t.vwmax; t.vall; t.vrel ];
  Statekey.char h 'p';
  List.iter (Statekey.int h)
    (List.sort compare (List.map rank t.promises));
  Statekey.char h 'M';
  let others_promises = ref [] in
  Array.iteri
    (fun j th ->
      if j <> i && th.promises <> [] then
        others_promises := th.promises @ !others_promises)
    st.threads;
  List.iter
    (fun m ->
      Statekey.loc h m.mloc;
      Statekey.int h m.mval;
      Statekey.int h (rank m.ts);
      Statekey.int h (if m.wtid = i then 1 else 0);
      Statekey.int h (if List.mem m.ts !others_promises then 1 else 0))
    msgs;
  Statekey.finish h

(* Per-exploration verdict cache. Values: 0 = slot reserved but not yet
   computed (another domain may recompute — duplicated work, never a
   wrong answer), 1 = not certifiable, 2 = certifiable. Mutex-guarded:
   the cache lives in the model context, which parallel exploration
   shares across domains. Call/hit counters are [Atomic] so the run
   wrappers can fold them into {!Engine.stats} afterwards. *)
type cert_cache = {
  cc_lock : Mutex.t;
  cc_tbl : int Statekey.Table.t;
  cc_calls : int Atomic.t;
  cc_hits : int Atomic.t;
}

let make_cert_cache () =
  { cc_lock = Mutex.create ();
    cc_tbl = Statekey.Table.create ~dummy:0 ();
    cc_calls = Atomic.make 0;
    cc_hits = Atomic.make 0 }

(* Memoized entry point. Only full-budget queries land here (every
   caller asks with the uniform [cfg.cert_depth]), so the verdict is a
   function of the key alone. Promise-free states short-circuit without
   touching the cache — they are trivially certified and would only
   dilute the hit-rate statistic. *)
let certifiable_cached cache cfg st init_val i =
  if st.threads.(i).promises = [] then true
  else
    match cache with
    | None -> certifiable cfg st init_val i
    | Some c -> (
        Atomic.incr c.cc_calls;
        let k = cert_key st i in
        Mutex.lock c.cc_lock;
        let prior =
          match Statekey.Table.find_or_add c.cc_tbl k 0 with
          | `Added -> 0
          | `Found v -> v
        in
        Mutex.unlock c.cc_lock;
        match prior with
        | 2 ->
            Atomic.incr c.cc_hits;
            true
        | 1 ->
            Atomic.incr c.cc_hits;
            false
        | _ ->
            let verdict = certifiable cfg st init_val i in
            Mutex.lock c.cc_lock;
            Statekey.Table.update c.cc_tbl k (if verdict then 2 else 1);
            Mutex.unlock c.cc_lock;
            verdict)

(* ------------------------------------------------------------------ *)
(* Exhaustive exploration                                              *)
(* ------------------------------------------------------------------ *)

let initial_state cfg (prog : Prog.t) : state =
  let mem =
    List.mapi
      (fun idx (l, v) ->
        ignore idx;
        { mloc = l; mval = v; ts = 0; wtid = -1 })
      prog.Prog.init
  in
  let threads =
    Array.of_list
      (List.map
         (fun th ->
           { code = th.Prog.code;
             regs = Reg.Map.empty;
             coh = Loc.Map.empty;
             vrnew = 0;
             vwnew = 0;
             vctrl = 0;
             vrmax = 0;
             vwmax = 0;
             vall = 0;
             vrel = 0;
             fuel = cfg.loop_fuel;
             promise_budget = cfg.max_promises;
             promises = [] })
         prog.Prog.threads)
  in
  { mem; next_ts = 1; threads }

let observe (prog : Prog.t) (st : state) init_val status : Behavior.outcome =
  let value = function
    | Prog.Obs_reg (tid, r) ->
        let idx =
          match
            List.find_index (fun th -> th.Prog.tid = tid) prog.Prog.threads
          with
          | Some i -> i
          | None -> invalid_arg "observe: unknown tid"
        in
        fst (lookup_reg st.threads.(idx).regs r)
    | Prog.Obs_loc l ->
        (* value of the coherence-final message on l *)
        let msgs =
          List.filter (fun m -> Loc.equal m.mloc l) st.mem
        in
        List.fold_left
          (fun (bts, bv) m -> if m.ts > bts then (m.ts, m.mval) else (bts, bv))
          (0, init_val l) msgs
        |> snd
  in
  Behavior.outcome ~status
    (List.map (fun obs -> (obs, value obs)) prog.Prog.observables)

(* is register [r] of thread index [idx] observable? *)
let observable_reg (prog : Prog.t) idx r =
  match List.nth_opt prog.Prog.threads idx with
  | Some th ->
      List.exists
        (function
          | Prog.Obs_reg (tid, r') ->
              tid = th.Prog.tid && Reg.name r' = Reg.name r
          | Prog.Obs_loc _ -> false)
        prog.Prog.observables
  | None -> false

(* The executor is an instance of the shared exploration engine. Per
   runnable thread, the expansion offers the architectural steps (several
   for a load: one per readable message) followed by the certified promise
   steps; terminal states record an outcome only when every promise has
   been fulfilled; under [strict_certification] uncertifiable states are
   pruned. The transition sequence is lazy, so certification work for a
   thread is only done once the previous threads' subtrees are explored
   (materialized eagerly when the POR oracle is active).

   POR labels: every step carries a {!Porlabel} footprint. Promise and
   fulfil steps record the affected base in [cert_write] (they change the
   promise set other threads' RMW enabledness and certification verdicts
   consult), promise steps record the promising thread's whole
   [access_bases] footprint in [cert_read] (the candidate set and the
   certification verdict read that history), and both promise and
   append-store steps set [alloc] (they take the next global timestamp).
   A thread's architectural step may only claim the singleton-ample
   property when the thread cannot also promise ([silent_ok]); the
   engine's side conditions do the rest.

   Under [strict_certification] the POR oracle is {e unsound}: pruned
   mid-path states may be certification-dead ([Terminal None]), which
   breaks the commutation diamond (the explored order can die where the
   pruned order survives). The run wrappers force [por:false] there. *)
module Model = struct
  type ctx = {
    prog : Prog.t;
    cfg : config;
    tids : int array;
    cache : cert_cache option;
        (** certification memo, shared across domains (internally
            mutex-guarded); [None] when [cfg.cert_cache] is off *)
    want_desc : bool;
        (** render human-readable step descriptions (witness runs only;
            POR-only label requests skip the formatting) *)
    sym : Symmetry.t option;
        (** thread-symmetry structure for orbit-canonical keys; [None]
            when disabled, no groups exist, or [strict_certification]
            forces exact keying (mirroring the POR valve) *)
  }

  type nonrec state = state

  (* POR footprint plus the witness-schedule entry; [independent] and
     [ample] consult only the footprint, witness collection only the
     step. The footprint's [disc] fields keep labels of one thread's
     enabled transitions distinct (engine requirement) even when
     [want_desc] leaves every [l_step] at the dummy. *)
  type label = { l_fp : Porlabel.t; l_step : step }

  let key ctx st =
    match ctx.sym with
    | None -> state_key st
    | Some s -> canonical_key s st

  let independent = Some (fun _ctx a b -> Porlabel.independent a.l_fp b.l_fp)
  let ample = Some (fun _ctx l -> Porlabel.ample l.l_fp)

  let sleepable ctx l =
    match ctx.sym with
    | None -> true
    | Some s -> not (Symmetry.grouped s l.l_fp.Porlabel.tid)

  let dummy_step = { s_tid = -1; s_what = "" }

  let expand { prog; cfg; tids; cache; want_desc; sym = _ } ~labels
      (st : state) :
      (state, label) Engine.expansion =
    let init_val loc = Prog.init_value prog loc in
    let n = Array.length st.threads in
    let certified_everywhere =
      (not cfg.strict_certification)
      || Array.for_all (fun t -> t.promises = []) st.threads
      ||
      let ok = ref true in
      for i = 0 to n - 1 do
        if st.threads.(i).promises <> []
           && not (certifiable_cached cache cfg st init_val i)
        then ok := false
      done;
      !ok
    in
    if not certified_everywhere then Engine.Terminal None
    else if Array.for_all (fun t -> t.code = []) st.threads then
      if Array.for_all (fun t -> t.promises = []) st.threads then
        Engine.Terminal (Some (observe prog st init_val Behavior.Normal))
      else Engine.Terminal None
    else
      let thread_steps i =
        let t = st.threads.(i) in
        if t.code = [] then Seq.empty
        else
          let instr = List.hd t.code in
          (* can this thread take a promise step here? (cheap syntactic
             over-approximation: budget left and a store in its code) *)
          let may_promise =
            t.promise_budget > 0 && store_bases [] t.code <> []
          in
          (* ordinary architectural steps *)
          let arch () =
            (match
               step_thread ~fp:labels ~silent_ok:(not may_promise)
                 ~obs:(observable_reg prog i) st init_val i
             with
            | steps ->
                List.to_seq steps
                |> Seq.filter_map (function
                     | Next (st', fp) ->
                         let s_step =
                           if labels && want_desc then
                             { s_tid = tids.(i);
                               s_what = describe_step st st' i instr }
                           else dummy_step
                         in
                         Some (Engine.Step ({ l_fp = fp; l_step = s_step }, st'))
                     | Fuel_out ->
                         Some
                           (Engine.Emit
                              (observe prog st init_val
                                 Behavior.Fuel_exhausted))
                     | Stuck -> None)
            | exception Thread_panic ->
                Seq.return
                  (Engine.Emit (observe prog st init_val Behavior.Panicked)))
              ()
          in
          (* promise steps: candidates from a solo run, kept only when the
             promising thread can still certify. Candidates are sorted so
             the label discriminator (index) is stable across independent
             other-thread moves. *)
          let promises () =
            if not may_promise then Seq.Nil
            else
              let cands =
                List.sort compare (solo_write_candidates cfg st init_val i)
              in
              let cert_read =
                if labels then access_bases [] t.code else []
              in
              (List.to_seq cands
              |> Seq.mapi (fun idx cand -> (idx, cand))
              |> Seq.filter_map (fun (idx, (loc, v)) ->
                     let ts = st.next_ts in
                     let m = { mloc = loc; mval = v; ts; wtid = i } in
                     let t' =
                       { t with
                         promises = ts :: t.promises;
                         promise_budget = t.promise_budget - 1 }
                     in
                     let st' =
                       set_thread
                         { st with mem = m :: st.mem; next_ts = ts + 1 }
                         i t'
                     in
                     if certifiable_cached cache cfg st' init_val i then
                       let fp =
                         if labels then
                           { (Porlabel.write ~tid:i loc) with
                             alloc = true;
                             cert_write = [ Loc.base loc ];
                             cert_read;
                             disc = idx }
                         else dummy_fp
                       in
                       let s_step =
                         if labels && want_desc then
                           { s_tid = tids.(i);
                             s_what =
                               Format.asprintf "promises [%a] := %d" Loc.pp
                                 loc v }
                         else dummy_step
                       in
                       Some (Engine.Step ({ l_fp = fp; l_step = s_step }, st'))
                     else None))
                ()
          in
          Seq.append arch promises
      in
      Engine.Steps (Seq.concat_map thread_steps (Seq.take n (Seq.ints 0)))
end

module E = Engine.Make (Model)

let make_ctx ?(want_desc = false) ?(sym = true) prog cfg =
  { Model.prog;
    cfg;
    tids =
      Array.of_list (List.map (fun th -> th.Prog.tid) prog.Prog.threads);
    cache = (if cfg.cert_cache then Some (make_cert_cache ()) else None);
    want_desc;
    (* Symmetry mirrors the POR valve: under strict certification the
       engine prunes certification-dead states mid-path, and an orbit
       representative may die where its permuted twin's concrete path
       would have survived a different certification-check order — keep
       exact keys there. *)
    sym =
      (if sym && not cfg.strict_certification then Symmetry.detect prog
       else None) }

(* POR is sound here only without strict certification: strict mode
   prunes mid-path states as [Terminal None], which breaks the sleep-set
   commutation diamond (see the Model comment). *)
let por_for cfg por =
  if cfg.strict_certification then Some false else por

(* Fold the context's certification counters into the engine's stats
   (the engine itself knows nothing about certification). *)
let with_cert_stats (ctx : Model.ctx) (s : Engine.stats) : Engine.stats =
  let s =
    match ctx.Model.cache with
    | None -> s
    | Some c ->
        { s with
          Engine.cert_calls = Atomic.get c.cc_calls;
          cert_hits = Atomic.get c.cc_hits }
  in
  match ctx.Model.sym with
  | None -> s
  | Some sy ->
      { s with
        Engine.sym_groups = Symmetry.n_groups sy;
        sym_collapsed = Symmetry.collapsed sy }

(** [run_full ?config ?jobs prog] explores all Promising Arm executions
    of [prog] and returns the behavior set, the per-outcome witness
    schedules, and the exploration statistics. [por] (default on)
    applies partial-order reduction — same behavior set, fewer states;
    it is forced off under [strict_certification] where it would be
    unsound. *)
let run_full ?(config = default_config) ?(jobs = 1) ?deadline ?por ?sym
    (prog : Prog.t) :
    Behavior.t * (Behavior.outcome * step list) list * Engine.stats =
  let ctx = make_ctx ~want_desc:true ?sym prog config in
  let r =
    E.explore ~max_states:config.max_states ?deadline
      ?por:(por_for config por) ~witnesses:true ~jobs ~ctx
      (initial_state config prog)
  in
  let witnesses =
    List.map
      (fun (o, ls) -> (o, List.map (fun l -> l.Model.l_step) ls))
      r.E.witnesses
  in
  (r.E.behaviors, witnesses, with_cert_stats ctx r.E.stats)

(** [run_with_witnesses ?config ?jobs prog] explores all Promising Arm
    executions of [prog] and additionally returns, for each distinct
    outcome, the first schedule (sequence of per-CPU steps, including
    promises) that produced it. *)
let run_with_witnesses ?config ?jobs ?deadline ?por ?sym (prog : Prog.t) :
    Behavior.t * (Behavior.outcome * step list) list =
  let behaviors, witnesses, _ =
    run_full ?config ?jobs ?deadline ?por ?sym prog
  in
  (behaviors, witnesses)

(** [run_stats ?config ?jobs prog] explores all Promising Arm executions
    of [prog] and returns the behavior set with exploration statistics
    (witness bookkeeping off). *)
let run_stats ?(config = default_config) ?(jobs = 1) ?deadline ?por ?sym
    (prog : Prog.t) : Behavior.t * Engine.stats =
  let ctx = make_ctx ?sym prog config in
  let r =
    E.explore ~max_states:config.max_states ?deadline
      ?por:(por_for config por) ~jobs ~ctx
      (initial_state config prog)
  in
  (r.E.behaviors, with_cert_stats ctx r.E.stats)

(** [run ?config ?jobs prog] explores all Promising Arm executions of
    [prog] (bounded by the configuration) and returns its behavior set. *)
let run ?config ?jobs ?deadline ?por ?sym (prog : Prog.t) : Behavior.t =
  fst (run_stats ?config ?jobs ?deadline ?por ?sym prog)

(* ------------------------------------------------------------------ *)
(* Key microbenchmark support                                          *)
(* ------------------------------------------------------------------ *)

(** [key_microbench ?config ~iters prog] compares the legacy string
    state key against the interned 128-bit hash over a sample of states
    reachable in [prog]: returns
    [(legacy_seconds, interned_seconds, states_sampled)] for
    [iters] keyings of every sampled state. *)
let key_microbench ?(config = default_config) ~iters (prog : Prog.t) :
    float * float * int =
  let ctx = make_ctx prog config in
  (* breadth-first sample of distinct reachable states *)
  let sample = ref [] in
  let seen = Statekey.Table.create ~dummy:() () in
  let q = Queue.create () in
  Queue.add (initial_state config prog) q;
  while (not (Queue.is_empty q)) && Statekey.Table.length seen < 512 do
    let st = Queue.pop q in
    match Statekey.Table.find_or_add seen (state_key st) () with
    | `Found () -> ()
    | `Added -> (
        sample := st :: !sample;
        match Model.expand ctx ~labels:false st with
        | Engine.Terminal _ -> ()
        | Engine.Steps steps ->
            Seq.iter
              (function
                | Engine.Step (_, st') -> Queue.add st' q
                | Engine.Emit _ -> ())
              steps)
  done;
  let states = Array.of_list !sample in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let legacy =
    time (fun () ->
        for _ = 1 to iters do
          Array.iter (fun st -> ignore (legacy_state_key st)) states
        done)
  in
  let interned =
    time (fun () ->
        for _ = 1 to iters do
          Array.iter (fun st -> ignore (state_key st)) states
        done)
  in
  (legacy, interned, Array.length states)
