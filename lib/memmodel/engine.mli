(** Model-generic exhaustive exploration engine.

    Every operational memory model in this library ({!Sc}, {!Tso},
    {!Promising}, {!Pushpull}) explores the same kind of object: a finite
    transition system whose states carry the whole machine configuration
    and whose terminal states yield observable {!Behavior.outcome}s. What
    used to be quadruplicated across the executors — depth-first search,
    seen-set memoization on a canonical state key, budget valves,
    fuel/panic outcome recording, and per-outcome witness schedules — lives
    here once, parameterized over a {!MODEL}.

    A model describes one state's outgoing structure with {!expansion}:
    either the state is terminal (optionally recording an outcome — [None]
    marks dead paths such as unfulfilled promises or pruned states), or it
    offers a {e lazy} sequence of transitions. Laziness matters: the
    engine forces the next transition only after fully exploring the
    previous one's subtree, so model-raised exceptions (e.g.
    {!Pushpull.check}'s ownership violations) surface at exactly the same
    point of the search as in a hand-rolled nested loop, and expensive
    transition enumeration (promise certification) is never done for
    subtrees cut off by a budget.

    {2 Parallel search}

    [explore ~jobs:n] fans the exploration across [n] OCaml 5 [Domain]s:
    a breadth-first prefix grows a frontier of at least [4*n] distinct
    states, the frontier is dealt round-robin into [n] buckets, and each
    domain runs the ordinary sequential search over its bucket with a
    private seen-set. Results are merged by set union.

    Determinism argument: models are pure (expansion depends only on the
    state), so the set of outcomes reachable from a state is a function of
    that state. The BFS prefix records every outcome it encounters; each
    frontier state's full subtree is explored by exactly one domain;
    therefore the union over the prefix and all domains equals the
    sequential result whenever no budget fires. Private seen-sets only
    cost duplicated work when two buckets reach the same state — never
    outcomes. Witness schedules and the state/dedup counters may differ
    from the sequential run (and [max_states] is enforced per domain
    rather than globally), but the behavior set is identical. *)

val version : string
(** Version tag of the exploration semantics. Any change that can alter a
    behavior set, a witness schedule, or the meaning of a budget must bump
    this string: it is part of every content-addressed cache key
    ({!Cache.Store}), so a bump invalidates all previously stored
    verification results. *)

(** Exploration statistics, threaded up through {!Litmus.run},
    {!Vrm.Refinement.check} and {!Vrm.Theorem4.check}. *)
type stats = {
  visited : int;  (** distinct states expanded *)
  dedup_hits : int;  (** transitions into an already-seen state *)
  transitions : int;  (** transitions enumerated (including emits) *)
  max_depth : int;  (** deepest point of the search *)
  outcomes : int;  (** distinct outcomes recorded *)
  wall_s : float;  (** wall-clock seconds for the whole exploration *)
  jobs : int;  (** domains used (1 = sequential) *)
  budget_hit : bool;  (** some [max_states] valve fired: partial results *)
}

val zero_stats : stats

val add_stats : stats -> stats -> stats
(** Aggregate statistics of independent explorations: counters and wall
    time add, depth and job count take the maximum, budget flags or. *)

val pp_stats : Format.formatter -> stats -> unit

(** One outgoing transition of a state. *)
type ('state, 'label) step =
  | Step of 'label * 'state
      (** successor state; the label (a human-readable action for witness
          schedules) is only retained when witnesses are requested *)
  | Emit of Behavior.outcome
      (** the path ends here with an outcome — fuel exhaustion and panics
          are emitted this way while sibling transitions keep exploring *)

type ('state, 'label) expansion =
  | Terminal of Behavior.outcome option
      (** no transitions; [Some o] records the outcome, [None] discards
          the path (dead states, strict-certification pruning) *)
  | Steps of ('state, 'label) step Seq.t
      (** lazy outgoing transitions, forced one at a time in order *)

module type MODEL = sig
  type ctx
  (** Per-exploration context (program, configuration) closed over by
      [expand]; immutable, shared across domains. *)

  type state

  type label
  (** Witness-schedule entry (e.g. {!Promising.step}). *)

  val key : state -> string
  (** Canonical memoization key: two states with the same key must have
      the same reachable outcome sets. *)

  val expand : ctx -> labels:bool -> state -> (state, label) expansion
  (** Outgoing structure of a state. When [labels] is false the model may
      put placeholder labels in [Step]s (they are dropped); this keeps
      witness bookkeeping off the hot path. Must be pure up to the
      exceptions it deliberately lets escape. *)
end

module Make (M : MODEL) : sig
  type result = {
    behaviors : Behavior.t;
    witnesses : (Behavior.outcome * M.label list) list;
        (** for each outcome, the first schedule that produced it (empty
            unless [witnesses:true]) *)
    stats : stats;
  }

  val explore :
    ?max_states:int ->
    ?deadline:float ->
    ?witnesses:bool ->
    ?jobs:int ->
    ctx:M.ctx ->
    M.state ->
    result
  (** Exhaustively explore from the initial state. [max_states] is a
      safety valve: exploration stops (with [stats.budget_hit] set) after
      expanding that many distinct states — per domain when [jobs > 1].
      [deadline] is an absolute [Unix.gettimeofday] timestamp: once it
      passes, the search stops at the next expanded state (in every
      domain) with [stats.budget_hit] set, which is how the verification
      service cancels jobs that outlive their per-job deadline.
      Exceptions raised by [M.expand] abort the search and propagate
      (from the lowest-numbered bucket first in parallel mode). *)
end

val enumerate_paths :
  expand:('state -> ('state, 'label) expansion) ->
  ?max_paths:int ->
  'state ->
  'label list list
(** Unmemoized enumeration of the label paths of all complete executions
    (paths ending in [Terminal]); [Emit] branches are dropped, and at most
    [max_paths] paths are collected (most recently found first). Used for
    trace collection on small programs ({!Pushpull.traces}). *)
