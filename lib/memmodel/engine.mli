(** Model-generic exhaustive exploration engine.

    Every operational memory model in this library ({!Sc}, {!Tso},
    {!Promising}, {!Pushpull}) explores the same kind of object: a finite
    transition system whose states carry the whole machine configuration
    and whose terminal states yield observable {!Behavior.outcome}s. What
    used to be quadruplicated across the executors — depth-first search,
    seen-set memoization on a canonical state key, budget valves,
    fuel/panic outcome recording, and per-outcome witness schedules — lives
    here once, parameterized over a {!MODEL}.

    A model describes one state's outgoing structure with {!expansion}:
    either the state is terminal (optionally recording an outcome — [None]
    marks dead paths such as unfulfilled promises or pruned states), or it
    offers a {e lazy} sequence of transitions. Laziness matters: the
    engine forces the next transition only after fully exploring the
    previous one's subtree, so model-raised exceptions (e.g.
    {!Pushpull.check}'s ownership violations) surface at exactly the same
    point of the search as in a hand-rolled nested loop, and expensive
    transition enumeration (promise certification) is never done for
    subtrees cut off by a budget. (When a model provides a POR oracle the
    expansion is materialized eagerly instead — the POR-enabled models
    enumerate transitions cheaply and never raise from the sequence.)

    {2 State interning}

    The seen-set is keyed on 128-bit structural hashes ({!Statekey})
    instead of rendered key strings, stored unboxed in open-addressing
    tables — the dedup hot path allocates nothing. This is hash
    compaction: see {!Statekey} for the collision argument.

    {2 Partial-order reduction}

    A model may provide an [independent] commutativity oracle on
    transition labels (and optionally an [ample] invisibility predicate).
    The engine then applies two sound reductions:

    - {e Sleep sets} (Godefroid): after exploring sibling [t{_i}], later
      siblings' subtrees need not re-explore [t{_i}] at the next state
      when it is independent of the transition taken — the two
      interleavings commute to the same state, and the [t{_i}]-first
      order was already explored. Sleep sets prune transitions (dedup
      work), never outcomes: every dropped schedule is Mazurkiewicz-
      equivalent to an explored one, and equivalent schedules end in the
      same terminal state, hence the same outcome. Combined with
      memoization, a visited state stores the sleep set it was explored
      under; a revisit deduplicates only if the stored set is a subset of
      the incoming one, else the state is re-explored under the
      intersection (monotone, hence terminating — state spaces here are
      acyclic because every transition consumes an instruction, loop fuel
      or a buffer entry).
    - {e Singleton ample sets}: when some enabled transition is [ample] —
      invisible (changes no memory, store buffer, or observable
      register), its thread's unique transition, and independent of every
      other thread's transitions — the engine explores {e only} that
      transition. Any run taking a sibling first commutes to one taking
      the ample step first without changing any observation: mid-path
      [Emit] outcomes snapshot only observable state, which the ample
      step does not touch, and terminal outcomes are reached either way.
      This is what makes POR visit {e strictly fewer states}, not just
      fewer transitions.

    [Emit] steps are always recorded and never pruned. All four models
    supply a {!Porlabel} footprint oracle; a model can still opt out
    with [independent = None] to keep exact search.

    {2 Symmetry reduction}

    Orthogonal to POR, the models may canonicalize their keys under
    thread-symmetry ({!Symmetry}): states that differ only by a
    permutation of interchangeable threads intern to one seen-set
    entry, quotienting the search by up to N! on N symmetric threads.
    The engine itself only sees the canonical keys — the quotient falls
    out of ordinary memoization — plus one composition rule:
    {!MODEL.sleepable} keeps the labels of symmetric threads out of
    sleep sets, because sleep sets are history and a revisit may arrive
    with its symmetric threads permuted, where literal label comparison
    against stored history would be wrong. Ungrouped threads keep full
    sleep-set pruning, and singleton-ample reduction (history-free,
    permutation-equivariant) still applies to symmetric threads. The
    [sym_groups]/[sym_collapsed] statistics are filled in by the model
    wrappers ({!Sc.run_stats} etc.), not by the engine.

    {2 Parallel search: the frontier scheduler}

    [explore ~jobs:n] runs [n] OCaml 5 [Domain]s over a {e shared}
    seen-set striped into mutex-guarded shards (selected by high key
    bits). An exploration is split into {e subtree tasks} at depth
    cuts: a successor whose depth is a multiple of [task_cut] is
    published to a per-domain deque (carrying its sleep-set context, so
    reduction state survives the hand-off), while all other successors
    stay on the publishing worker's private stack and are processed
    without touching a lock beyond the seen-set shard. Owners push and
    pop tasks depth-first at one end of their deque; idle domains steal
    the oldest task (rooting the largest subtree) from a victim's other
    end. This keeps the scheduling granularity coarse — one deque
    operation per [task_cut] tree levels instead of one per state — so
    a single large corpus entry saturates all domains instead of
    drowning in per-frame mutex traffic. [max_states] and [deadline]
    are enforced {e globally} through [Atomic] counters: the first
    domain to trip a valve stops all of them promptly, and a deadline
    that fires mid-task drops the remaining private frames of every
    worker, so the partial-result classification ([budget_hit]) is the
    same as the sequential engine's.

    [jobs] is taken as given — the engine does not second-guess the
    caller. Callers that fan out over corpora ({!Vrm.Refinement}, the
    CLI) cap it at [Domain.recommended_domain_count ()]:
    oversubscribing domains adds stop-the-world minor-GC barriers and
    scheduler churn without any parallelism in return (the behavior set
    does not depend on the domain count either way).

    Determinism argument: models are pure (expansion depends only on the
    state), so the set of outcomes reachable from a state is a function
    of that state. Every frame is either expanded by exactly one domain
    or deduplicated against a shard entry written by a domain that
    expanded (or is expanding) the same state under a sleep set no larger
    than its own; therefore the union of all domains' outcome sets equals
    the sequential result whenever no budget fires. Witness schedules and
    the state/dedup/steal counters may differ run to run, but the
    behavior set is identical — the parity tests assert digest equality
    against sequential search with POR both on and off. *)

val version : string
(** Version tag of the exploration semantics. Any change that can alter a
    behavior set, a witness schedule, or the meaning of a budget must bump
    this string: it is part of every content-addressed cache key
    ({!Cache.Store}), so a bump invalidates all previously stored
    verification results. *)

(** Exploration statistics, threaded up through {!Litmus.run},
    {!Vrm.Refinement.check} and {!Vrm.Theorem4.check}. *)
type stats = {
  visited : int;  (** distinct states expanded *)
  dedup_hits : int;  (** transitions into an already-seen state *)
  transitions : int;  (** transitions enumerated (including emits) *)
  max_depth : int;  (** deepest point of the search *)
  outcomes : int;  (** distinct outcomes recorded *)
  por_pruned : int;
      (** transitions skipped by partial-order reduction (sleeping
          siblings + ample-pruned siblings); 0 without an oracle *)
  tasks_spawned : int;
      (** subtree tasks published to the shared deque pool at depth
          cuts (parallel mode only; 0 when sequential) *)
  tasks_stolen : int;
      (** tasks claimed from another domain's deque *)
  shared_hits : int;
      (** dedup hits against a seen-set entry inserted by a different
          domain — work the shared seen-set saved vs private sets *)
  cert_calls : int;
      (** promise-certification queries answered (memoized or not);
          0 for models without a certification step *)
  cert_hits : int;
      (** certification queries answered from the per-exploration cert
          cache without re-running the solo search *)
  sym_groups : int;
      (** symmetric thread groups detected in the program (0 = symmetry
          off, or no two threads interchangeable) *)
  sym_collapsed : int;
      (** state arrivals whose thread orientation was rewritten to the
          orbit representative — each one is a state the raw keying
          would have interned separately *)
  seen_stripes : int;
      (** seen-set stripes populated by the search (1 in sequential
          mode; up to 64 under the striped shared seen-set) *)
  stripe_occupancy : int;
      (** peak key count in any single stripe — with [seen_stripes],
          a summary of how evenly the hash striping spread the load *)
  lock_waits : int;
      (** stripe-lock acquisitions that found the lock already held by
          another domain (try-lock misses) — the seen-set contention
          measure; 0 when sequential *)
  minor_words : int;
      (** minor-heap words allocated across all exploration domains
          (per-domain [Gc] deltas, summed) — the allocation-pressure
          counter behind the scaling gate *)
  wall_s : float;  (** wall-clock seconds for the whole exploration *)
  jobs : int;  (** effective domains used (1 = sequential) *)
  budget_hit : bool;  (** some budget valve fired: partial results *)
}

val zero_stats : stats

val add_stats : stats -> stats -> stats
(** Aggregate statistics of independent explorations: counters and wall
    time add, depth and job count take the maximum, budget flags or. *)

val pp_stats : Format.formatter -> stats -> unit
(** Renders the POR/sym/task/shared/cert/contention counters only when
    non-zero (stripe occupancy only in parallel mode), so output for
    models without those features is unchanged from earlier versions. *)

(** One outgoing transition of a state. *)
type ('state, 'label) step =
  | Step of 'label * 'state
      (** successor state; the label (a human-readable action for witness
          schedules, and the currency of the POR oracles) is only
          retained when witnesses or POR need it *)
  | Emit of Behavior.outcome
      (** the path ends here with an outcome — fuel exhaustion and panics
          are emitted this way while sibling transitions keep exploring *)

type ('state, 'label) expansion =
  | Terminal of Behavior.outcome option
      (** no transitions; [Some o] records the outcome, [None] discards
          the path (dead states, strict-certification pruning) *)
  | Steps of ('state, 'label) step Seq.t
      (** lazy outgoing transitions, forced one at a time in order
          (materialized eagerly only under a POR oracle) *)

module type MODEL = sig
  type ctx
  (** Per-exploration context (program, configuration) closed over by
      [expand]; immutable, shared across domains. *)

  type state

  type label
  (** Witness-schedule entry (e.g. {!Promising.step}) and POR currency. *)

  val key : ctx -> state -> Statekey.t
  (** Canonical memoization key: two states with the same key must have
      the same reachable outcome sets. Fold every semantically relevant
      state component into the hash ({!Statekey.fresh}/[finish]). The
      context carries the per-program {!Symmetry} structure (when
      enabled), under which the model hashes symmetric threads in
      orbit-canonical order — permuted states then share a key, which
      is sound because permuting interchangeable threads preserves
      reachable outcome sets. *)

  val independent : (ctx -> label -> label -> bool) option
  (** Commutativity oracle enabling partial-order reduction. When
      [independent ctx a b] holds, the two transitions must commute from
      any state enabling both: neither disables the other, both
      execution orders reach the same state, and neither order changes
      the other's effect. [None] keeps exact search. Labels must
      uniquely identify a transition among the enabled set of any state
      they can both be pending at (the engine compares them with
      structural equality). *)

  val ample : (ctx -> label -> bool) option
  (** Invisibility predicate for singleton-ample reduction. A label may
      be ample only if its transition (a) is the issuing thread's unique
      enabled transition, (b) is independent of every other thread's
      transitions, and (c) leaves every observation unchanged — memory,
      store buffers and observable registers untouched — so pruned
      sibling orders produce identical mid-path [Emit] outcomes. Only
      consulted when [independent] is also provided. *)

  val sleepable : ctx -> label -> bool
  (** May this label be remembered in sleep sets? Models return [false]
      for labels of symmetry-grouped threads (see the symmetry section
      above): under orbit-canonical keys a revisit can arrive with those
      threads permuted, and a stored sleep set mentioning them would be
      compared against the wrong concrete labels. Filtering is always
      sound — a smaller sleep set only means less pruning — and models
      without symmetry return [true] unconditionally. *)

  val expand : ctx -> labels:bool -> state -> (state, label) expansion
  (** Outgoing structure of a state. When [labels] is false the model may
      put placeholder labels in [Step]s (they are dropped); this keeps
      witness bookkeeping off the hot path. The engine passes
      [labels:true] whenever witnesses are requested or a POR oracle is
      active. Must be pure up to the exceptions it deliberately lets
      escape. *)
end

module Make (M : MODEL) : sig
  type result = {
    behaviors : Behavior.t;
    witnesses : (Behavior.outcome * M.label list) list;
        (** for each outcome, the first schedule that produced it (empty
            unless [witnesses:true]) *)
    stats : stats;
  }

  val explore :
    ?max_states:int ->
    ?deadline:float ->
    ?witnesses:bool ->
    ?por:bool ->
    ?task_cut:int ->
    ?jobs:int ->
    ctx:M.ctx ->
    M.state ->
    result
  (** Exhaustively explore from the initial state. [max_states] is a
      safety valve: exploration stops (with [stats.budget_hit] set) after
      expanding that many distinct states — enforced {e globally} via an
      [Atomic] counter in parallel mode, so [~jobs:4 ~max_states:b]
      expands at most [b] states total, same as sequential. [deadline]
      is an absolute [Unix.gettimeofday] timestamp: once it passes, the
      search stops at the next expanded state (in every domain) with
      [stats.budget_hit] set, which is how the verification service
      cancels jobs that outlive their per-job deadline. [por] (default
      [true]) applies partial-order reduction when the model provides an
      oracle; the behavior set is identical either way. [task_cut]
      (default 8) is the depth granularity at which subtrees are
      published as stealable tasks; ignored when [jobs <= 1], and any
      value yields the same behavior set. Exceptions raised by
      [M.expand] abort the search in every domain and propagate (first
      exception wins). *)
end

val enumerate_paths :
  expand:('state -> ('state, 'label) expansion) ->
  ?max_paths:int ->
  'state ->
  'label list list
(** Unmemoized enumeration of the label paths of all complete executions
    (paths ending in [Terminal]); [Emit] branches are dropped, and at most
    [max_paths] paths are collected (most recently found first). Used for
    trace collection on small programs ({!Pushpull.traces}). *)
