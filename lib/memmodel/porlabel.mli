(** Transition labels for partial-order reduction, shared by the
    interleaving models that provide an [Engine.MODEL.independent]
    oracle ({!Sc}, {!Tso}).

    A label classifies one transition of one thread by its footprint on
    shared and observable state. The model assigning a kind takes on the
    proof obligation attached to it:

    - [Silent]: touches nothing outside the thread's private,
      unobservable state (code position, loop fuel, non-observable
      registers) {e and} is the thread's unique enabled transition.
      Qualifies for singleton-ample reduction: executing it first
      commutes with any other thread's transition and changes no
      observation, so sibling orders need not be explored at all.
    - [Private]: touches only thread-private state, but is either
      observable (writes an observable register, appends to a store
      buffer that observation forwards from) or not provably the
      thread's only transition. Commutes with {e every} other-thread
      transition, but is never ample.
    - [Read loc] / [Write loc] / [Rmw loc]: a shared-memory access to a
      statically known concrete location.
    - [Sync]: a fence-like action with a multi-location footprint
      (buffer flush, fenced RMW). Conservatively dependent on every
      other-thread non-local transition.

    Within one state, a thread's enabled transitions must carry distinct
    labels, and a label sleeping across independent transitions must
    keep denoting the same transition — both hold here because any
    transition {e by} thread [t] is dependent on every other label of
    thread [t] (same [tid]), so sleep sets never carry a label across a
    move of its own thread. *)

type kind =
  | Silent
  | Private
  | Read of Loc.t
  | Write of Loc.t
  | Rmw of Loc.t
  | Sync

type t = { tid : int; kind : kind }

val independent : t -> t -> bool
(** Commutativity: same-thread labels are always dependent; [Silent] and
    [Private] commute with everything of other threads; two [Read]s
    commute; [Sync] conflicts with any other-thread access; distinct
    concrete locations commute. *)

val ample : t -> bool
(** [Silent] labels only. *)

val pp : Format.formatter -> t -> unit
