(** Transition footprints for partial-order reduction, shared by every
    interleaving model that provides an [Engine.MODEL.independent]
    oracle ({!Sc}, {!Tso}, {!Promising}, {!Pushpull}).

    A label records one transition's footprint on shared and observable
    state. Two labels commute exactly when their footprints are disjoint
    in the sense of {!independent}; every model compiles its transitions
    into this one vocabulary so the reduction argument is proved once
    and reused (the IMM strategy: a single intermediate event
    abstraction between the models and the engine).

    The model constructing a label takes on these proof obligations:

    - [reads]/[writes] list every shared location the transition may
      read or write (including message appends and store-buffer
      drains). A location missing from the lists asserts the transition
      cannot touch it.
    - [alloc] marks transitions that allocate from a state-global
      ordered resource (a Promising timestamp). Two allocating
      transitions never commute: whichever runs first claims the
      earlier timestamp, so the resulting states differ.
    - [obases]/[otransfer]: per-base ownership footprints for the
      push/pull discipline. [obases] lists bases whose ownership the
      transition consults (a tracked access); [otransfer] lists bases
      whose ownership it changes (pull/push). A transfer conflicts with
      any consult or transfer of the same base.
    - [cert_read]/[cert_write]: certification footprints. [cert_read]
      lists bases whose message history the transition's {e enabledness
      or certification verdict} depends on; [cert_write] lists bases
      whose history it changes in a way that can invalidate another
      thread's certification memo key (append, fulfil). Disjointness
      here is the "neither invalidates the other's memo key" half of
      certification-aware independence.
    - [global] marks fence-like actions with an unbounded footprint
      (buffer flush, fenced RMW, an ownership violation). Dependent on
      every other-thread label that has any footprint; commutes only
      with fully quiet labels.
    - [silent] additionally asserts the transition is the thread's
      {e unique} enabled transition, touches nothing observable, and is
      quiet. Qualifies for singleton-ample reduction: executing it
      first commutes with any other thread's transition and changes no
      observation, so sibling orders need not be explored at all.
    - [disc] is a discriminator with no commutativity meaning. Within
      one state a thread's enabled transitions must carry distinct
      labels (the sleep-set test prunes by label equality); when two
      same-thread transitions would otherwise be indistinguishable
      (e.g. two read choices of the same location), [disc] must
      separate them. It must be {e stable}: derived from the
      transition itself (message timestamp, candidate index), never
      from the source state, because a sleeping label must keep
      denoting the same transition across the independent moves it
      sleeps through.

    Same-thread labels are always dependent, so sleep sets never carry
    a label across a move of its own thread. *)

type t = {
  tid : int;
  disc : int;
  silent : bool;
  global : bool;
  alloc : bool;
  reads : Loc.t list;
  writes : Loc.t list;
  obases : string list;
  otransfer : string list;
  cert_read : string list;
  cert_write : string list;
}

val empty : tid:int -> t
(** No footprint, not silent. Commutes with everything of other
    threads, including [global] labels. *)

val silent : tid:int -> t
(** [empty] plus the singleton-ample claim. *)

val private_ : tid:int -> t
(** Alias of [empty]: thread-private but observable or not provably
    unique, so never ample. *)

val read : tid:int -> Loc.t -> t
val write : tid:int -> Loc.t -> t
val rmw : tid:int -> Loc.t -> t

val sync : tid:int -> t
(** A [global] label. *)

val quiet : t -> bool
(** No footprint in any dimension (ignoring [silent]/[disc]). *)

val independent : t -> t -> bool
(** Commutativity: same-thread labels are dependent; [global] labels
    conflict with anything non-quiet; two [alloc]s conflict; writes
    conflict with same-location reads and writes; ownership transfers
    conflict with same-base consults and transfers; certification
    writes conflict with same-base certification reads. Everything
    else commutes. *)

val ample : t -> bool
(** [silent] labels only. *)

val pp : Format.formatter -> t -> unit
