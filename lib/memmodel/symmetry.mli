(** Thread-symmetry reduction for the exploration engine.

    The verification workload is dominated by interleavings of
    {e interchangeable} threads — N identical VCPUs hammering the same
    lock or page-table slot. Classic symmetry reduction (Clarke-Enders-
    Filkorn-Jha / Emerson-Sistla "scalarsets") quotients the state space
    by thread-index permutations: if swapping two identical threads maps
    state [s] to state [s'], then [s] and [s'] have the same reachable
    outcome sets, so only one of them needs to be explored. On a family
    of N symmetric writers the seen set shrinks by up to N!.

    {2 Detection}

    Two threads are in the same {e symmetry group} when (a) their
    instruction streams have identical canonical byte encodings — the
    exact {!Statekey.emit_instrs} tokens {!Fingerprint} digests, so any
    difference in constants, registers, barriers or structure separates
    them — and (b) neither is named by a per-thread [Obs_reg]
    observable (collapsing individually-observed threads would conflate
    distinct outcomes; [Obs_loc] observables are global and
    permutation-invariant). Note that thread-local register {e names}
    need no renaming: register files are per-thread maps, so identical
    code implies identical register usage. Data values derived from the
    thread's own id (e.g. a thread storing its tid) make the encodings
    differ and exclude the pair automatically — value symmetry is out of
    scope.

    {2 Canonicalization}

    The models do not physically permute states. Instead each model's
    key function summarizes every thread-local component (pc/continuation,
    registers, store buffer, promise set, views) into one 128-bit
    sub-key per thread, and {!fold_threads}/{!order} absorb those
    sub-keys in {e orbit-canonical} order: within each group, sorted by
    {!Statekey.compare}. All members of a permutation orbit therefore
    intern to the same {!Statekey.t}, and the engine's seen set performs
    the quotient for free. Shared components that mention thread indices
    (Promising's message writer ids) are relabelled through the
    {!inverse} rank before hashing, so the ownership relation is
    permuted consistently with the thread order.

    {2 Soundness}

    Collapsing [s'] into [s] is sound because the transition relation is
    equivariant under within-group permutations (identical code,
    index-uniform semantics) and outcomes are permutation-invariant
    (grouped threads have no [Obs_reg] observables; [Obs_loc] reads
    shared memory, which permutations do not touch). The models
    restrict or disable canonicalization where a model-level asymmetry
    could be masked: Promising under [strict_certification] (mirroring
    the POR valve) and push/pull whenever any base is ownership-tracked
    (violations carry concrete thread ids). Interaction with sleep-set
    POR: sleep sets are history — a label pruned at the representative
    need not be pruned at a permuted arrival — so the engine keeps only
    permutation-invariant labels (ungrouped threads') in sleep sets; see
    {!Engine.MODEL.sleepable}. *)

type t
(** Symmetry structure of one program: the thread groups plus a
    collapsed-arrival counter. Cheap to build; computed once per
    exploration context. *)

val detect : Prog.t -> t option
(** [None] when no two threads are interchangeable — canonicalization
    then costs nothing (models fall back to their plain keys). Thread
    {e indices} in the result are positions in [prog.threads], the same
    indexing the engine and models use, not declared tids. *)

val n_groups : t -> int
val groups : t -> int array array

val grouped : t -> int -> bool
(** Is thread index [i] a member of some symmetry group? Drives the
    engine's sleep-set filter. *)

val collapsed : t -> int
(** How many key computations re-oriented a non-representative arrival
    — the [sym_collapsed] statistic. Atomic; summed across domains. *)

val order : t -> Statekey.t array -> int array
(** [order s sub] (one sub-key per thread index): [ord] with [ord.(p)]
    the thread occupying canonical slot [p] — identity outside groups,
    ascending-sub-key order inside. Deterministic given [sub]; ties
    (identical sub-keys) keep index order, which is harmless because
    tied threads are indistinguishable in the current state. *)

val inverse : int array -> int array
(** Inverse permutation: [inverse ord].(i) = canonical slot of thread
    [i]. Promising maps message writer ids through it. *)

val fold_threads : t -> Statekey.h -> Statekey.t array -> unit
(** Absorb the sub-keys into [h] in canonical order — the whole
    canonical tail for models whose shared state carries no thread
    indices (SC, TSO, push/pull). *)

val pp : Format.formatter -> t -> unit
