(** Stable content digests for programs, configurations and behavior
    sets. See the interface for the stability contract.

    The canonical term traversal lives in {!Statekey} (shared with the
    engine's hashed state interning); here it writes through a [Buffer]
    sink, which reproduces the historical length-prefixed,
    tag-disambiguated byte encoding exactly — distinct values never
    serialize to the same bytes, and digests are unchanged across the
    interning refactor. *)

let add_int buf n = Statekey.emit_int (Statekey.buffer_sink buf) n
let add_str buf s = Statekey.emit_str (Statekey.buffer_sink buf) s
let add_instrs buf is = Statekey.emit_instrs (Statekey.buffer_sink buf) is
let add_loc buf l = Statekey.emit_loc (Statekey.buffer_sink buf) l
let add_bases buf bs = Statekey.emit_bases (Statekey.buffer_sink buf) bs

let add_observable buf (o : Prog.observable) =
  match o with
  | Prog.Obs_reg (tid, r) ->
      Buffer.add_char buf 'r';
      add_int buf tid;
      add_str buf (Reg.name r)
  | Prog.Obs_loc l ->
      Buffer.add_char buf 'm';
      add_loc buf l

let prog_bytes (p : Prog.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "vrm-prog/1|";
  add_int buf (List.length p.Prog.threads);
  List.iter
    (fun (t : Prog.thread) ->
      add_int buf t.Prog.tid;
      add_instrs buf t.Prog.code)
    p.Prog.threads;
  add_int buf (List.length p.Prog.init);
  List.iter
    (fun (l, v) ->
      add_loc buf l;
      add_int buf v)
    p.Prog.init;
  add_int buf (List.length p.Prog.observables);
  List.iter (add_observable buf) p.Prog.observables;
  add_bases buf p.Prog.shared_bases;
  Buffer.contents buf

let prog (p : Prog.t) : string = Digest.to_hex (Digest.string (prog_bytes p))

let promising_config (c : Promising.config) : string =
  (* [cert_cache] cannot change a behavior set, but it is part of the
     execution recipe the service caches under, so A/B runs with the
     cache on and off never coalesce onto one entry. *)
  Printf.sprintf "fuel=%d,promises=%d,cert=%d,states=%d,strict=%b,ccache=%b"
    c.Promising.loop_fuel c.Promising.max_promises c.Promising.cert_depth
    c.Promising.max_states c.Promising.strict_certification
    c.Promising.cert_cache

let behaviors (b : Behavior.t) : string =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Behavior.pp b))
