(** Stable content digests for programs, configurations and behavior
    sets. See the interface for the stability contract; every encoder
    below is length-prefixed and tag-disambiguated so distinct values
    never serialize to the same bytes. *)

let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_int buf n =
  Buffer.add_char buf 'i';
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let rec add_vexp buf (e : Expr.vexp) =
  match e with
  | Expr.Const n ->
      Buffer.add_char buf 'C';
      add_int buf n
  | Expr.Reg r ->
      Buffer.add_char buf 'R';
      add_str buf (Reg.name r)
  | Expr.Add (a, b) ->
      Buffer.add_char buf '+';
      add_vexp buf a;
      add_vexp buf b
  | Expr.Sub (a, b) ->
      Buffer.add_char buf '-';
      add_vexp buf a;
      add_vexp buf b
  | Expr.Mul (a, b) ->
      Buffer.add_char buf '*';
      add_vexp buf a;
      add_vexp buf b
  | Expr.Div (a, b) ->
      Buffer.add_char buf '/';
      add_vexp buf a;
      add_vexp buf b

let add_cmp buf (c : Expr.cmp) =
  Buffer.add_char buf
    (match c with
    | Expr.Eq -> '='
    | Expr.Ne -> '!'
    | Expr.Lt -> '<'
    | Expr.Le -> 'l'
    | Expr.Gt -> '>'
    | Expr.Ge -> 'g')

let rec add_bexp buf (e : Expr.bexp) =
  match e with
  | Expr.Bool b ->
      Buffer.add_char buf 'B';
      Buffer.add_char buf (if b then '1' else '0')
  | Expr.Cmp (c, a, b) ->
      Buffer.add_char buf 'c';
      add_cmp buf c;
      add_vexp buf a;
      add_vexp buf b
  | Expr.And (a, b) ->
      Buffer.add_char buf '&';
      add_bexp buf a;
      add_bexp buf b
  | Expr.Or (a, b) ->
      Buffer.add_char buf '|';
      add_bexp buf a;
      add_bexp buf b
  | Expr.Not a ->
      Buffer.add_char buf '~';
      add_bexp buf a

let add_aexp buf (a : Expr.aexp) =
  add_str buf a.Expr.abase;
  add_vexp buf a.Expr.offset

let add_order buf (o : Instr.order) =
  Buffer.add_char buf
    (match o with
    | Instr.Plain -> 'p'
    | Instr.Acquire -> 'a'
    | Instr.Release -> 'r'
    | Instr.Acq_rel -> 'x')

let add_barrier buf (b : Instr.barrier) =
  Buffer.add_char buf
    (match b with
    | Instr.Dmb_full -> 'F'
    | Instr.Dmb_ld -> 'L'
    | Instr.Dmb_st -> 'S'
    | Instr.Isb -> 'I')

let add_bases buf bs =
  add_int buf (List.length bs);
  List.iter (add_str buf) bs

let rec add_instr buf (i : Instr.t) =
  match i with
  | Instr.Load (r, a, o) ->
      Buffer.add_string buf "ld";
      add_str buf (Reg.name r);
      add_aexp buf a;
      add_order buf o
  | Instr.Store (a, e, o) ->
      Buffer.add_string buf "st";
      add_aexp buf a;
      add_vexp buf e;
      add_order buf o
  | Instr.Faa (r, a, e, o) ->
      Buffer.add_string buf "fa";
      add_str buf (Reg.name r);
      add_aexp buf a;
      add_vexp buf e;
      add_order buf o
  | Instr.Xchg (r, a, e, o) ->
      Buffer.add_string buf "xc";
      add_str buf (Reg.name r);
      add_aexp buf a;
      add_vexp buf e;
      add_order buf o
  | Instr.Cas (r, a, exp, des, o) ->
      Buffer.add_string buf "cs";
      add_str buf (Reg.name r);
      add_aexp buf a;
      add_vexp buf exp;
      add_vexp buf des;
      add_order buf o
  | Instr.Barrier b ->
      Buffer.add_string buf "ba";
      add_barrier buf b
  | Instr.Move (r, e) ->
      Buffer.add_string buf "mv";
      add_str buf (Reg.name r);
      add_vexp buf e
  | Instr.If (c, t, e) ->
      Buffer.add_string buf "if";
      add_bexp buf c;
      add_instrs buf t;
      add_instrs buf e
  | Instr.While (c, body) ->
      Buffer.add_string buf "wh";
      add_bexp buf c;
      add_instrs buf body
  | Instr.Pull bs ->
      Buffer.add_string buf "pl";
      add_bases buf bs
  | Instr.Push bs ->
      Buffer.add_string buf "ps";
      add_bases buf bs
  | Instr.Tlbi None -> Buffer.add_string buf "t*"
  | Instr.Tlbi (Some a) ->
      Buffer.add_string buf "ta";
      add_aexp buf a
  | Instr.Panic -> Buffer.add_string buf "pa"
  | Instr.Nop -> Buffer.add_string buf "np"

and add_instrs buf is =
  add_int buf (List.length is);
  List.iter (add_instr buf) is

let add_loc buf (l : Loc.t) =
  add_str buf (Loc.base l);
  add_int buf (Loc.index l)

let add_observable buf (o : Prog.observable) =
  match o with
  | Prog.Obs_reg (tid, r) ->
      Buffer.add_char buf 'r';
      add_int buf tid;
      add_str buf (Reg.name r)
  | Prog.Obs_loc l ->
      Buffer.add_char buf 'm';
      add_loc buf l

let prog_bytes (p : Prog.t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "vrm-prog/1|";
  add_int buf (List.length p.Prog.threads);
  List.iter
    (fun (t : Prog.thread) ->
      add_int buf t.Prog.tid;
      add_instrs buf t.Prog.code)
    p.Prog.threads;
  add_int buf (List.length p.Prog.init);
  List.iter
    (fun (l, v) ->
      add_loc buf l;
      add_int buf v)
    p.Prog.init;
  add_int buf (List.length p.Prog.observables);
  List.iter (add_observable buf) p.Prog.observables;
  add_bases buf p.Prog.shared_bases;
  Buffer.contents buf

let prog (p : Prog.t) : string = Digest.to_hex (Digest.string (prog_bytes p))

let promising_config (c : Promising.config) : string =
  Printf.sprintf "fuel=%d,promises=%d,cert=%d,states=%d,strict=%b"
    c.Promising.loop_fuel c.Promising.max_promises c.Promising.cert_depth
    c.Promising.max_states c.Promising.strict_certification

let behaviors (b : Behavior.t) : string =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Behavior.pp b))
