(** Candidate-execution machinery shared by the enumerating axiomatic
    checker ({!Axiomatic}) and the SAT-based bounded model checker
    ({!Bmc}).

    A {e candidate execution} is a control-flow path per thread (a
    {!path}), a reads-from choice per load and a per-location coherence
    order over the stores. This module owns everything the two backends
    must agree on, so the axioms exist in exactly one place:

    {ul
    {- compiling a thread into paths: straight-line code, [If] branching
       (one path per guard valuation), [Move] register computation,
       bounded [While] unrolling, and computed addresses (constant-folded
       where the operands are statically known, otherwise split over a
       static index domain);}
    {- the static dependency relations: data/address dependencies through
       registers, control dependencies from guards to po-later stores,
       control+ISB dependencies to po-later loads, and the barrier-order
       rules (DMB flavours, acquire, release, RCsc);}
    {- the Armv8 axioms over a concrete candidate ({!valid}): internal
       sc-per-location, external acyclic(ob), RMW atomicity;}
    {- decoding a candidate back into values ({!decode}): a multi-thread
       cursor replay that resolves register files from the reads-from
       choice, rejects paths whose guards or address choices disagree
       with the resolved values, and drops out-of-thin-air value cycles.}}

    Programs outside the fragment ([Xchg]/[Cas]/[Panic], trapping address
    arithmetic, runtime address indices outside the static domain) raise
    {!Unsupported} naming the offending thread and pc. *)

exception Unsupported of string

let default_bound = 4

(* ------------------------------------------------------------------ *)
(* Events and steps                                                    *)
(* ------------------------------------------------------------------ *)

type kind =
  | E_read of Instr.order
  | E_write of Instr.order
  | E_rmw of Instr.order  (** both a read and a write *)
  | E_fence of Instr.barrier

type event = {
  id : int;  (** global id within a combo (= index into [events]) *)
  tid : int;
  po : int;  (** program-order index within the thread's path *)
  pc : int;  (** pre-order index of the originating instruction *)
  kind : kind;
  loc : Loc.t option;  (** None for fences *)
  dst : Reg.t option;  (** register written by a load/RMW *)
  wval : Expr.vexp option;  (** store data *)
  rmw_delta : Expr.vexp option;  (** FAA delta *)
  addr_check : (Expr.vexp * int list) option;
      (** register-dependent address: (offset expression, static index
          domain); the event's [loc] fixes one chosen index, and decoding
          rejects the path when the resolved offset disagrees *)
  addr_deps : int list;  (** read events feeding the address *)
  data_deps : int list;  (** read events feeding the store data / delta *)
  ctrl_deps : int list;  (** guard-origin reads po-before this write *)
  ctrl_isb_deps : int list;
      (** guard-origin reads with an ISB between them and this read *)
}

(** One step of a thread's path, replayed in order by {!decode}. *)
type step =
  | S_event of int  (** global event id *)
  | S_move of Reg.t * Expr.vexp
  | S_guard of Expr.bexp * bool  (** guard expression, expected value *)

type path = {
  p_events : event list;  (** local ids = po index, in program order *)
  p_steps : step list;  (** [S_event] carries local ids until assembly *)
  p_exhausted : bool;  (** a [While] hit the unrolling bound *)
}

type combo = {
  events : event array;
  steps : (int * step list) list;  (** per thread, global event ids *)
  exhausted : bool;
}

let is_read e = match e.kind with E_read _ | E_rmw _ -> true | _ -> false
let is_write e = match e.kind with E_write _ | E_rmw _ -> true | _ -> false

let is_acquire e =
  match e.kind with
  | E_read (Instr.Acquire | Instr.Acq_rel)
  | E_rmw (Instr.Acquire | Instr.Acq_rel) ->
      true
  | _ -> false

let is_release e =
  match e.kind with
  | E_write (Instr.Release | Instr.Acq_rel)
  | E_rmw (Instr.Release | Instr.Acq_rel) ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Fragment check                                                      *)
(* ------------------------------------------------------------------ *)

let unsupported tid pc what =
  raise (Unsupported (Printf.sprintf "thread %d, pc %d: %s" tid pc what))

(* Pre-order instruction count: the pc numbering below is stable across
   path variants because If/While bodies occupy a fixed pc range. *)
let rec count_instrs (code : Instr.t list) : int =
  List.fold_left
    (fun n (i : Instr.t) ->
      n + 1
      +
      match i with
      | Instr.If (_, t, f) -> count_instrs t + count_instrs f
      | Instr.While (_, b) -> count_instrs b
      | _ -> 0)
    0 code

let check_fragment tid code =
  let pc = ref (-1) in
  let rec go (i : Instr.t) =
    incr pc;
    match i with
    | Instr.Xchg _ -> unsupported tid !pc "xchg is outside the fragment"
    | Instr.Cas _ -> unsupported tid !pc "cas is outside the fragment"
    | Instr.Panic -> unsupported tid !pc "panic is outside the fragment"
    | Instr.If (_, t, f) ->
        List.iter go t;
        List.iter go f
    | Instr.While (_, b) -> List.iter go b
    | _ -> ()
  in
  List.iter go code

(* ------------------------------------------------------------------ *)
(* Address index domains                                               *)
(* ------------------------------------------------------------------ *)

(* Every integer constant appearing in the program text. *)
let rec consts_v acc = function
  | Expr.Const i -> i :: acc
  | Expr.Reg _ -> acc
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Div (a, b) ->
      consts_v (consts_v acc a) b

let rec consts_b acc = function
  | Expr.Bool _ -> acc
  | Expr.Cmp (_, a, b) -> consts_v (consts_v acc a) b
  | Expr.And (a, b) | Expr.Or (a, b) -> consts_b (consts_b acc a) b
  | Expr.Not b -> consts_b acc b

let consts_a acc (a : Expr.aexp) = consts_v acc a.Expr.offset

let rec consts_i acc (i : Instr.t) =
  match i with
  | Instr.Load (_, a, _) -> consts_a acc a
  | Instr.Store (a, e, _) -> consts_v (consts_a acc a) e
  | Instr.Faa (_, a, e, _) | Instr.Xchg (_, a, e, _) ->
      consts_v (consts_a acc a) e
  | Instr.Cas (_, a, e1, e2, _) ->
      consts_v (consts_v (consts_a acc a) e1) e2
  | Instr.Move (_, e) -> consts_v acc e
  | Instr.If (b, t, f) ->
      List.fold_left consts_i (List.fold_left consts_i (consts_b acc b) t) f
  | Instr.While (b, t) -> List.fold_left consts_i (consts_b acc b) t
  | Instr.Tlbi (Some a) -> consts_a acc a
  | Instr.Barrier _ | Instr.Pull _ | Instr.Push _ | Instr.Tlbi None
  | Instr.Panic | Instr.Nop ->
      acc

(** Static index domain for register-dependent addresses on [base]:
    index 0, the indices of the program's known locations on that base,
    every integer constant in the program text and every initial memory
    value. A runtime index outside this set raises {!Unsupported} during
    decoding rather than silently dropping behaviors. *)
let addr_domain (prog : Prog.t) : string -> int list =
  let consts =
    List.concat_map
      (fun th -> List.fold_left consts_i [] th.Prog.code)
      prog.Prog.threads
  in
  let init_vals = List.map snd prog.Prog.init in
  let known = Prog.known_locs prog in
  fun base ->
    let on_base =
      List.filter_map
        (fun l -> if Loc.base l = base then Some (Loc.index l) else None)
        known
    in
    List.sort_uniq compare ((0 :: on_base) @ consts @ init_vals)

(* ------------------------------------------------------------------ *)
(* Path expansion                                                      *)
(* ------------------------------------------------------------------ *)

type pstate = {
  rev_steps : step list;
  rev_events : event list;
  n_ev : int;
  origin : (Reg.t * int list) list;
      (** register -> local read events its value derives from *)
  known : (Reg.t * int option) list;
      (** latest binding; absent = never assigned = 0; [None] = unknown *)
  ctrl : int list;  (** guard-origin reads accumulated so far *)
  ctrl_isb : int list;  (** guard origins with an ISB po-after *)
  stopped : bool;  (** While bound hit: the rest of the thread is cut *)
  exhausted : bool;
}

let set_assoc k v l = (k, v) :: List.remove_assoc k l
let union_ids a b = List.sort_uniq compare (a @ b)

let origins st regs =
  List.sort_uniq compare
    (List.concat_map
       (fun r -> Option.value ~default:[] (List.assoc_opt r st.origin))
       regs)

exception Unknown_reg

let const_fold st (e : Expr.vexp) : int option =
  let lookup r =
    match List.assoc_opt r st.known with
    | None -> (0, 0) (* never assigned: registers start at 0 *)
    | Some (Some v) -> (v, 0)
    | Some None -> raise Unknown_reg
  in
  match Expr.eval_v lookup e with
  | v, _ -> Some v
  | exception Unknown_reg -> None
  | exception Expr.Eval_panic _ -> None

let mk_event st tid pc kind loc dst wval rmw_delta addr_check addr_deps
    data_deps ctrl_deps ctrl_isb_deps =
  {
    id = st.n_ev;
    tid;
    po = st.n_ev;
    pc;
    kind;
    loc;
    dst;
    wval;
    rmw_delta;
    addr_check;
    addr_deps;
    data_deps;
    ctrl_deps;
    ctrl_isb_deps;
  }

let add_event st e =
  {
    st with
    rev_events = e :: st.rev_events;
    rev_steps = S_event e.id :: st.rev_steps;
    n_ev = st.n_ev + 1;
  }

(* Emit an access at address [a]: constant-fold the offset when every
   register in it is statically known, otherwise fork one path per index
   in the static domain and record the (expression, domain) check. *)
let with_addr domain st tid pc (a : Expr.aexp) k =
  match const_fold st a.Expr.offset with
  | Some idx -> k st (Loc.v ~index:idx a.Expr.abase) [] None
  | None ->
      let regs = Expr.regs_of_vexp a.Expr.offset in
      if regs = [] then unsupported tid pc "address expression traps";
      let deps = origins st regs in
      let dom = domain a.Expr.abase in
      List.concat_map
        (fun idx ->
          k st (Loc.v ~index:idx a.Expr.abase) deps (Some (a.Expr.offset, dom)))
        dom

let take_guard b expect st =
  {
    st with
    rev_steps = S_guard (b, expect) :: st.rev_steps;
    ctrl = union_ids (origins st (Expr.regs_of_bexp b)) st.ctrl;
  }

let exp_simple domain tid pc st (i : Instr.t) : pstate list =
  match i with
  | Instr.Load (r, a, ord) ->
      with_addr domain st tid pc a (fun st loc deps check ->
          let e =
            mk_event st tid pc (E_read ord) (Some loc) (Some r) None None
              check deps [] [] st.ctrl_isb
          in
          [
            {
              (add_event st e) with
              origin = set_assoc r [ e.id ] st.origin;
              known = set_assoc r None st.known;
            };
          ])
  | Instr.Store (a, v, ord) ->
      with_addr domain st tid pc a (fun st loc deps check ->
          let e =
            mk_event st tid pc (E_write ord) (Some loc) None (Some v) None
              check deps
              (origins st (Expr.regs_of_vexp v))
              st.ctrl []
          in
          [ add_event st e ])
  | Instr.Faa (r, a, d, ord) ->
      with_addr domain st tid pc a (fun st loc deps check ->
          let e =
            mk_event st tid pc (E_rmw ord) (Some loc) (Some r) None (Some d)
              check deps
              (origins st (Expr.regs_of_vexp d))
              st.ctrl st.ctrl_isb
          in
          [
            {
              (add_event st e) with
              origin = set_assoc r [ e.id ] st.origin;
              known = set_assoc r None st.known;
            };
          ])
  | Instr.Barrier b ->
      let e =
        mk_event st tid pc (E_fence b) None None None None None [] [] [] []
      in
      let st = add_event st e in
      let st =
        if b = Instr.Isb && st.ctrl <> [] then
          { st with ctrl_isb = union_ids st.ctrl st.ctrl_isb }
        else st
      in
      [ st ]
  | Instr.Move (r, e) ->
      [
        {
          st with
          rev_steps = S_move (r, e) :: st.rev_steps;
          origin = set_assoc r (origins st (Expr.regs_of_vexp e)) st.origin;
          known = set_assoc r (const_fold st e) st.known;
        };
      ]
  | Instr.Nop | Instr.Pull _ | Instr.Push _ | Instr.Tlbi _ -> [ st ]
  | Instr.If _ | Instr.While _ | Instr.Xchg _ | Instr.Cas _ | Instr.Panic ->
      assert false (* handled by exp_instr / check_fragment *)

let rec exp_instr domain ~bound tid sts pc (i : Instr.t) : pstate list =
  incr pc;
  let p = !pc in
  let live, dead = List.partition (fun st -> not st.stopped) sts in
  match i with
  | Instr.If (b, tb, fb) ->
      let t =
        exp_list domain ~bound tid (List.map (take_guard b true) live) pc tb
      in
      let f =
        exp_list domain ~bound tid (List.map (take_guard b false) live) pc fb
      in
      dead @ t @ f
  | Instr.While (b, body) ->
      let n = count_instrs body in
      let rec unroll fuel sts_in acc =
        let alive, cut = List.partition (fun st -> not st.stopped) sts_in in
        let exits = cut @ List.map (take_guard b false) alive in
        if fuel = 0 then
          (* residual iteration: the guard may still hold after [bound]
             unrollings — truncate those paths and flag the bound *)
          let trunc =
            List.map
              (fun st ->
                { (take_guard b true st) with stopped = true; exhausted = true })
              alive
          in
          acc @ exits @ trunc
        else
          let pc' = ref p in
          let iter =
            exp_list domain ~bound tid
              (List.map (take_guard b true) alive)
              pc' body
          in
          unroll (fuel - 1) iter (acc @ exits)
      in
      let out = unroll bound live [] in
      pc := p + n;
      dead @ out
  | _ -> dead @ List.concat_map (fun st -> exp_simple domain tid p st i) live

and exp_list domain ~bound tid sts pc instrs =
  List.fold_left (fun sts i -> exp_instr domain ~bound tid sts pc i) sts instrs

let thread_paths domain ~bound tid code : path list =
  check_fragment tid code;
  let init =
    {
      rev_steps = [];
      rev_events = [];
      n_ev = 0;
      origin = [];
      known = [];
      ctrl = [];
      ctrl_isb = [];
      stopped = false;
      exhausted = false;
    }
  in
  let pc = ref (-1) in
  List.map
    (fun st ->
      {
        p_events = List.rev st.rev_events;
        p_steps = List.rev st.rev_steps;
        p_exhausted = st.exhausted;
      })
    (exp_list domain ~bound tid [ init ] pc code)

(* cartesian product *)
let rec product = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = product rest in
      List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

(* all permutations of a list (co enumeration; lists are tiny) *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun p -> x :: p)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let assemble (choice : (int * path) list) : combo =
  let off = ref 0 in
  let parts =
    List.map
      (fun (tid, p) ->
        let base = !off in
        off := base + List.length p.p_events;
        let remap ids = List.map (fun i -> i + base) ids in
        let events =
          List.map
            (fun e ->
              {
                e with
                id = e.id + base;
                addr_deps = remap e.addr_deps;
                data_deps = remap e.data_deps;
                ctrl_deps = remap e.ctrl_deps;
                ctrl_isb_deps = remap e.ctrl_isb_deps;
              })
            p.p_events
        in
        let steps =
          List.map
            (function
              | S_event i -> S_event (i + base)
              | (S_move _ | S_guard _) as s -> s)
            p.p_steps
        in
        (tid, events, steps, p.p_exhausted))
      choice
  in
  {
    events =
      Array.of_list (List.concat_map (fun (_, evs, _, _) -> evs) parts);
    steps = List.map (fun (tid, _, steps, _) -> (tid, steps)) parts;
    exhausted = List.exists (fun (_, _, _, ex) -> ex) parts;
  }

let combos ?(bound = default_bound) (prog : Prog.t) : combo list =
  let domain = addr_domain prog in
  let per_thread =
    List.map
      (fun th ->
        List.map
          (fun p -> (th.Prog.tid, p))
          (thread_paths domain ~bound th.Prog.tid th.Prog.code))
      prog.Prog.threads
  in
  List.map assemble (product per_thread)

(* ------------------------------------------------------------------ *)
(* Static relations                                                    *)
(* ------------------------------------------------------------------ *)

let events_list x = Array.to_list x.events

let locs x =
  List.sort_uniq compare (List.filter_map (fun e -> e.loc) (events_list x))

let writes_on x loc =
  List.filter (fun e -> is_write e && e.loc = Some loc) (events_list x)

let reads x = List.filter is_read (events_list x)

let po_pairs x =
  let evs = events_list x in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if a.tid = b.tid && a.po < b.po then Some (a, b) else None)
        evs)
    evs

let po_loc_edges x =
  List.filter_map
    (fun (a, b) ->
      if a.loc <> None && a.loc = b.loc then Some (a.id, b.id) else None)
    (po_pairs x)

(** dob ∪ ctrl ∪ ctrl+ISB: the value-independent dependency part of ob.
    Address and data dependencies order both loads and stores; control
    dependencies order po-later stores; control+ISB orders po-later
    loads. *)
let dep_edges x =
  List.concat_map
    (fun b ->
      let to_b d = (d, b.id) in
      List.map to_b (b.addr_deps @ b.data_deps)
      @ (if is_write b then List.map to_b b.ctrl_deps else [])
      @ if is_read b then List.map to_b b.ctrl_isb_deps else [])
    (events_list x)

let bob_edges x =
  let evs = events_list x in
  let fences_between a b kind_pred =
    List.exists
      (fun f ->
        f.tid = a.tid && a.po < f.po && f.po < b.po
        && match f.kind with E_fence k -> kind_pred k | _ -> false)
      evs
  in
  List.concat_map
    (fun (a, b) ->
      let edges = ref [] in
      let add () = edges := (a.id, b.id) :: !edges in
      (* po;[dmb full];po *)
      if fences_between a b (fun k -> k = Instr.Dmb_full) then add ();
      (* [R];po;[dmb ld];po *)
      if is_read a && fences_between a b (fun k -> k = Instr.Dmb_ld) then
        add ();
      (* [W];po;[dmb st];po;[W] *)
      if
        is_write a && is_write b
        && fences_between a b (fun k -> k = Instr.Dmb_st)
      then add ();
      (* [A];po *)
      if is_acquire a then add ();
      (* po;[L] *)
      if is_release b then add ();
      (* [L];po;[A] (RCsc) *)
      if is_release a && is_acquire b then add ();
      !edges)
    (po_pairs x)

let static_ob_edges x = dep_edges x @ bob_edges x

(* ------------------------------------------------------------------ *)
(* Axiom checking over a concrete candidate                            *)
(* ------------------------------------------------------------------ *)

(* A tiny DAG cycle check over int nodes. *)
let acyclic (n : int) (edges : (int * int) list) : bool =
  let adj = Array.make (max n 1) [] in
  List.iter
    (fun (a, b) -> if a >= 0 && b >= 0 then adj.(a) <- b :: adj.(a))
    edges;
  let color = Array.make (max n 1) 0 in
  let rec dfs v =
    if color.(v) = 1 then false
    else if color.(v) = 2 then true
    else begin
      color.(v) <- 1;
      let ok = List.for_all dfs adj.(v) in
      color.(v) <- 2;
      ok
    end
  in
  let ok = ref true in
  for v = 0 to n - 1 do
    if color.(v) = 0 && not (dfs v) then ok := false
  done;
  !ok

let co_pos co loc w =
  match List.assoc_opt loc co with
  | None -> -1
  | Some order -> (
      match List.find_index (fun i -> i = w) order with
      | Some i -> i
      | None -> -1)

(** fr: read r -> writes co-after the write r reads from. *)
let fr_edges x ~rf ~co =
  events_list x
  |> List.concat_map (fun r ->
         if not (is_read r) then []
         else
           match r.loc with
           | None -> []
           | Some loc ->
               let w = List.assoc r.id rf in
               let pos = if w = -1 then -1 else co_pos co loc w in
               (match List.assoc_opt loc co with
               | None -> []
               | Some order ->
                   List.filteri (fun i _ -> i > pos) order
                   (* an RMW is not fr-before its own write *)
                   |> List.filter (fun w' -> w' <> r.id)
                   |> List.map (fun w' -> (r.id, w'))))

let co_edges co =
  List.concat_map
    (fun (_, order) ->
      let rec pairs = function
        | a :: (b :: _ as rest) -> (a, b) :: pairs rest
        | _ -> []
      in
      pairs order)
    co

let rf_edges rf =
  List.filter_map (fun (r, w) -> if w = -1 then None else Some (w, r)) rf

(** internal: acyclic(po-loc ∪ rf ∪ co ∪ fr) *)
let internal_ok x ~rf ~co =
  acyclic (Array.length x.events)
    (po_loc_edges x @ rf_edges rf @ co_edges co @ fr_edges x ~rf ~co)

(** atomicity: an RMW reads the co-immediate predecessor of its write. *)
let atomicity_ok x ~rf ~co =
  Array.for_all
    (fun e ->
      match e.kind with
      | E_rmw _ -> (
          match e.loc with
          | None -> true
          | Some loc ->
              let w = List.assoc e.id rf in
              let my_pos = co_pos co loc e.id in
              let read_pos = if w = -1 then -1 else co_pos co loc w in
              my_pos = read_pos + 1)
      | _ -> true)
    x.events

(** external: acyclic(ob) with ob = rfe ∪ coe ∪ fre ∪ static deps/bob. *)
let external_ok x ~rf ~co =
  let same_thread a b = x.events.(a).tid = x.events.(b).tid in
  let ext = List.filter (fun (a, b) -> not (same_thread a b)) in
  acyclic (Array.length x.events)
    (ext (rf_edges rf) @ ext (co_edges co)
    @ ext (fr_edges x ~rf ~co)
    @ static_ob_edges x)

let valid x ~rf ~co =
  internal_ok x ~rf ~co && atomicity_ok x ~rf ~co && external_ok x ~rf ~co

(* ------------------------------------------------------------------ *)
(* Decoding: values, feasibility, outcomes                             *)
(* ------------------------------------------------------------------ *)

type resolution = {
  values : int array;  (** per event: the value written (writes, RMWs) *)
  rvalues : int array;  (** per event: the value read (reads, RMWs) *)
  envs : (int * (Reg.t, int) Hashtbl.t) list;  (** final register files *)
}

type decoded = Feasible of resolution | Infeasible | Stuck

(* Value resolution is demand-driven: each event's value is a lazily
   forced cell over the reads-from choice, so a po-later store can
   resolve before an earlier load of the same thread (load buffering).
   A cell that depends on itself through rf is an out-of-thin-air value
   cycle; the candidate is dropped ([Stuck]), matching the axiomatic
   fixpoint the Promising executor agrees with. *)
type cstate = Thunk of (unit -> int) | Forcing | Done of int
type cell = { mutable state : cstate }

exception Value_cycle

let force c =
  match c.state with
  | Done v -> v
  | Forcing -> raise Value_cycle
  | Thunk f ->
      c.state <- Forcing;
      let v = f () in
      c.state <- Done v;
      v

type check =
  | C_guard of (Reg.t * cell) list * Expr.bexp * bool
  | C_addr of event * (Reg.t * cell) list * Expr.vexp * int list

let decode (prog : Prog.t) (x : combo) ~(rf : int -> int) : decoded =
  let n = Array.length x.events in
  let wcell : cell option array = Array.make n None in
  let rcell : cell option array = Array.make n None in
  let checks = ref [] in
  let eval_with env e =
    fst
      (Expr.eval_v
         (fun r ->
           match List.assoc_opt r env with
           | Some c -> (force c, 0)
           | None -> (0, 0) (* registers start at 0 *))
         e)
  in
  (* Pass 1: walk each thread's path, snapshotting the register
     environment (reg -> cell) at every step. *)
  let final_envs =
    List.map
      (fun (tid, steps) ->
        let env = ref [] in
        List.iter
          (fun step ->
            match step with
            | S_move (r, e) ->
                let snap = !env in
                env :=
                  (r, { state = Thunk (fun () -> eval_with snap e) }) :: snap
            | S_guard (b, expect) -> checks := C_guard (!env, b, expect) :: !checks
            | S_event eid -> (
                let e = x.events.(eid) in
                let snap = !env in
                (match e.addr_check with
                | Some (off, dom) ->
                    checks := C_addr (e, snap, off, dom) :: !checks
                | None -> ());
                match e.kind with
                | E_fence _ -> ()
                | E_write _ ->
                    wcell.(eid) <-
                      Some
                        {
                          state =
                            Thunk
                              (fun () -> eval_with snap (Option.get e.wval));
                        }
                | E_read _ ->
                    let c =
                      {
                        state =
                          Thunk
                            (fun () ->
                              let w = rf eid in
                              if w = -1 then
                                Prog.init_value prog (Option.get e.loc)
                              else force (Option.get wcell.(w)));
                      }
                    in
                    rcell.(eid) <- Some c;
                    Option.iter (fun r -> env := (r, c) :: snap) e.dst
                | E_rmw _ ->
                    let rc =
                      {
                        state =
                          Thunk
                            (fun () ->
                              let w = rf eid in
                              if w = -1 then
                                Prog.init_value prog (Option.get e.loc)
                              else force (Option.get wcell.(w)));
                      }
                    in
                    let wc =
                      {
                        state =
                          Thunk
                            (fun () ->
                              force rc
                              + eval_with snap (Option.get e.rmw_delta));
                      }
                    in
                    rcell.(eid) <- Some rc;
                    wcell.(eid) <- Some wc;
                    Option.iter (fun r -> env := (r, rc) :: snap) e.dst))
          steps;
        (tid, !env))
      x.steps
  in
  (* Pass 2: feasibility checks (guards, address choices), then force
     every value. *)
  try
    let feasible =
      List.for_all
        (function
          | C_guard (env, b, expect) ->
              let g, _ =
                Expr.eval_b
                  (fun r ->
                    match List.assoc_opt r env with
                    | Some c -> (force c, 0)
                    | None -> (0, 0))
                  b
              in
              g = expect
          | C_addr (e, env, off, dom) ->
              let v = eval_with env off in
              let chosen = Loc.index (Option.get e.loc) in
              v = chosen
              ||
              if List.mem v dom then false
              else
                unsupported e.tid e.pc
                  (Printf.sprintf
                     "runtime address index %d outside the static domain" v))
        (List.rev !checks)
    in
    if not feasible then Infeasible
    else begin
      let values = Array.make n 0 and rvalues = Array.make n 0 in
      Array.iteri
        (fun i c -> Option.iter (fun c -> values.(i) <- force c) c)
        wcell;
      Array.iteri
        (fun i c -> Option.iter (fun c -> rvalues.(i) <- force c) c)
        rcell;
      let envs =
        List.map
          (fun (tid, env) ->
            let tbl = Hashtbl.create 8 in
            List.iter
              (fun (r, c) -> Hashtbl.replace tbl r (force c))
              (List.rev env);
            (tid, tbl))
          final_envs
      in
      Feasible { values; rvalues; envs }
    end
  with
  | Value_cycle -> Stuck
  | Expr.Eval_panic m ->
      raise (Unsupported ("expression trap during decode: " ^ m))

let outcome_values (prog : Prog.t) (_x : combo) (res : resolution)
    ~(co_last : Loc.t -> int option) : (Prog.observable * int) list =
  List.map
    (fun o ->
      ( o,
        match o with
        | Prog.Obs_reg (tid, r) -> (
            match List.assoc_opt tid res.envs with
            | Some env -> Option.value ~default:0 (Hashtbl.find_opt env r)
            | None -> 0)
        | Prog.Obs_loc loc -> (
            match co_last loc with
            | Some w -> res.values.(w)
            | None -> Prog.init_value prog loc) ))
    prog.Prog.observables

let status_of (x : combo) =
  if x.exhausted then Behavior.Fuel_exhausted else Behavior.Normal
