(** Exhaustive sequentially-consistent executor.

    Memory is a single global map; at every step one thread executes its
    next instruction in program order (Lamport's SC). All interleavings
    are explored by depth-first search with memoization on the full
    machine state. Spin loops are unrolled up to [fuel] iterations per
    thread; paths that exhaust fuel are reported as
    {!Behavior.Fuel_exhausted} rather than dropped.

    The executor instantiates the shared {!Engine}; [jobs] fans the
    search across that many domains (identical behavior set). *)

val run :
  ?fuel:int -> ?jobs:int -> ?deadline:float -> ?por:bool -> ?sym:bool ->
  Prog.t -> Behavior.t
(** [deadline] (absolute [Unix.gettimeofday] time) cancels the search
    when it passes; partial results carry [stats.budget_hit]. [por]
    (default on) applies sleep-set/ample partial-order reduction —
    identical behavior set, strictly fewer states on racy programs.
    [sym] (default on) applies thread-symmetry reduction ({!Symmetry}):
    states differing only by a permutation of interchangeable threads
    intern once — identical behavior set, up to N! fewer states on N
    symmetric threads. *)

val run_stats :
  ?fuel:int -> ?jobs:int -> ?deadline:float -> ?por:bool -> ?sym:bool ->
  Prog.t -> Behavior.t * Engine.stats
(** Like {!run}, also returning exploration statistics
    ([sym_groups]/[sym_collapsed] filled in when [sym] found groups). *)
