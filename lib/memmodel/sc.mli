(** Exhaustive sequentially-consistent executor.

    Memory is a single global map; at every step one thread executes its
    next instruction in program order (Lamport's SC). All interleavings
    are explored by depth-first search with memoization on the full
    machine state. Spin loops are unrolled up to [fuel] iterations per
    thread; paths that exhaust fuel are reported as
    {!Behavior.Fuel_exhausted} rather than dropped.

    The executor instantiates the shared {!Engine}; [jobs] fans the
    search across that many domains (identical behavior set). *)

val run :
  ?fuel:int -> ?jobs:int -> ?deadline:float -> ?por:bool -> Prog.t ->
  Behavior.t
(** [deadline] (absolute [Unix.gettimeofday] time) cancels the search
    when it passes; partial results carry [stats.budget_hit]. [por]
    (default on) applies sleep-set/ample partial-order reduction —
    identical behavior set, strictly fewer states on racy programs. *)

val run_stats :
  ?fuel:int -> ?jobs:int -> ?deadline:float -> ?por:bool -> Prog.t ->
  Behavior.t * Engine.stats
(** Like {!run}, also returning exploration statistics. *)
