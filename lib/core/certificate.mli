(** The wDRF certificate: the executable analog of "SeKVM satisfies the
    weakened wDRF conditions" (paper §5). Per KVM version it combines
    program audits over the DSL corpus (DRF, barriers, refinement) with
    system audits over a full SeKVM run (Write-Once, TLBI, transactional
    page tables, isolation, attacks, oracle independence). *)

open Sekvm

type program_report = {
  entry : Kernel_progs.entry;
  drf : Check_drf.verdict;
  barrier : Check_barrier.verdict;
  refine : Refinement.verdict;
  as_expected : bool;
}

type system_report = {
  write_once : Check_write_once.verdict;
  tlbi : Check_tlbi.verdict;
  transactional_map : Check_transactional.verdict;
  transactional_map_deep : Check_transactional.verdict;
  transactional_unmap : Check_transactional.verdict;
  example5_rejected : bool;
  isolation : Check_isolation.verdict;
  attacks_denied : bool;
  oracle_independent : bool;
  theorem4 : bool;
}

type report = {
  version : Kernel_progs.version;
  programs : program_report list;
  system : system_report;
  certified : bool;
}

(** {2 Cacheable summaries}

    A full {!report} drags along traces, behavior sets and closures; the
    verification service caches the plain-data summary below instead —
    everything a client needs to display or gate on, nothing that cannot
    round-trip through a byte store. *)

type program_summary = {
  ps_name : string;
  ps_prog_digest : string;  (** {!Memmodel.Fingerprint.prog} of the entry *)
  ps_drf : bool;
  ps_barrier : bool;
  ps_refine : bool;
  ps_as_expected : bool;
}

type summary = {
  s_linux : string;
  s_stage2_levels : int;
  s_programs : program_summary list;
  s_write_once : bool;
  s_tlbi : bool;
  s_transactional : bool;  (** all three transactional audits *)
  s_example5_rejected : bool;
  s_isolation : bool;
  s_attacks_denied : bool;
  s_oracle_independent : bool;
  s_theorem4 : bool;
  s_certified : bool;
}

val summarize : report -> summary
val pp_summary : Format.formatter -> summary -> unit

val audit_program : Kernel_progs.entry -> program_report
val audit_system : Kernel_progs.version -> system_report
val certify : Kernel_progs.version -> report
val certify_all : unit -> report list

val pp_program_report : Format.formatter -> program_report -> unit
val pp_report : Format.formatter -> report -> unit
