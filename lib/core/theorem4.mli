(** Executable Theorem 4 (paper §4.3): under Weak-Memory-Isolation, every
    relaxed-memory kernel behavior of P ∪ Q is matched by some SC
    execution of P ∪ Q' for a synthesized user program Q' that simply
    writes the required values into user memory. *)

open Memmodel

type split = {
  kernel_tids : int list;
  user_tids : int list;
}

val project : split -> Prog.t -> Behavior.t -> Behavior.t
(** Kernel-observable projection: shared locations + kernel registers. *)

val user_written_bases : split -> Prog.t -> string list

val synthesize_q' : ?value_domain:int list -> split -> Prog.t -> Prog.t list
(** All candidate replacement programs: the kernel threads plus one
    oracle thread per assignment of values (or no write) to the
    user-writable bases. *)

type verdict = {
  holds : bool;
  rm_kernel : Behavior.t;
  sc_kernel : Behavior.t;  (** union over the Q' candidates *)
  uncovered : Behavior.t;
  q'_count : int;
  rm_stats : Engine.stats;  (** Promising exploration statistics *)
  sc_stats : Engine.stats;  (** SC statistics, summed over the Q' runs *)
}

val check :
  ?config:Promising.config -> ?sc_fuel:int -> ?value_domain:int list ->
  ?jobs:int -> ?por:bool -> ?sym:bool -> split -> Prog.t -> verdict
(** [por] (default on) applies partial-order reduction to the SC
    explorations of the synthesized Q' candidates — identical behavior
    sets, fewer states. [sym] (default on) likewise applies
    thread-symmetry reduction ({!Symmetry}) to both sides. *)

val pp_verdict : Format.formatter -> verdict -> unit
