(** Constructing an SC execution from a push/pull execution (paper §4.1,
    Fig. 6).

    Given one execution trace of the ownership-instrumented model, shared
    memory accesses are assigned to their enclosing critical sections
    (pull..push spans). Two accesses from different CPUs are ordered iff
    the first one's {e push} precedes the second one's {e pull} in the
    global promise order; same-CPU accesses follow program order. The
    resulting relation is a partial order; any topological sort of it is
    an SC execution with the same results, which is exactly the paper's
    construction. *)

open Memmodel

type kind = K_read | K_write | K_rmw [@@deriving show, eq]

type access = {
  a_pos : int;  (** position in the global trace (the promise order) *)
  a_tid : int;
  a_loc : Loc.t;
  a_kind : kind;
  a_value : int;
  a_cs : (int * int) option;  (** (pull position, push position) *)
}

type t = {
  accesses : access list;
  tracked : string list;
}

(** Open critical sections while scanning: per tid, (pull position, bases,
    not-yet-closed). *)
let analyze ?(tracked = []) (events : Pushpull.event list) : t =
  let n = List.length events in
  ignore n;
  let arr = Array.of_list events in
  (* for each (tid, position), the enclosing (pull, push) span *)
  let spans = Hashtbl.create 16 in
  Array.iteri
    (fun i ev ->
      match ev with
      | Pushpull.Ev_pull (tid, bases) ->
          (* find the matching push *)
          let rec find j depth =
            if j >= Array.length arr then None
            else
              match arr.(j) with
              | Pushpull.Ev_pull (t', b') when t' = tid && b' = bases ->
                  find (j + 1) (depth + 1)
              | Pushpull.Ev_push (t', b') when t' = tid && b' = bases ->
                  if depth = 0 then Some j else find (j + 1) (depth - 1)
              | _ -> find (j + 1) depth
          in
          (match find (i + 1) 0 with
          | Some j -> Hashtbl.add spans (tid, bases) (i, j)
          | None -> ())
      | _ -> ())
    arr;
  let enclosing tid pos =
    Hashtbl.fold
      (fun (t', _) (i, j) best ->
        if t' = tid && i < pos && pos < j then
          match best with
          | Some (i', _) when i' > i -> best
          | _ -> Some (i, j)
        else best)
      spans None
  in
  let is_tracked loc = tracked = [] || List.mem (Loc.base loc) tracked in
  let accesses = ref [] in
  Array.iteri
    (fun i ev ->
      let add tid loc kind value =
        if is_tracked loc then
          accesses :=
            { a_pos = i; a_tid = tid; a_loc = loc; a_kind = kind;
              a_value = value; a_cs = enclosing tid i }
            :: !accesses
      in
      match ev with
      | Pushpull.Ev_read (tid, loc, v) -> add tid loc K_read v
      | Pushpull.Ev_write (tid, loc, v) -> add tid loc K_write v
      | Pushpull.Ev_rmw (tid, loc, _, v) -> add tid loc K_rmw v
      | Pushpull.Ev_pull _ | Pushpull.Ev_push _ | Pushpull.Ev_barrier _
      | Pushpull.Ev_tlbi _ -> ())
    arr;
  { accesses = List.rev !accesses; tracked }

(** The partial order of the paper: program order within a CPU; across
    CPUs, [a] before [b] iff [a]'s push precedes [b]'s pull. *)
let happens_before (a : access) (b : access) : bool =
  if a.a_tid = b.a_tid then a.a_pos < b.a_pos
  else
    match (a.a_cs, b.a_cs) with
    | Some (_, push_a), Some (pull_b, _) -> push_a < pull_b
    | _ -> false

(** Unordered (concurrent) pairs — Fig. 6's overlapping critical
    sections. *)
let concurrent a b =
  (not (happens_before a b)) && not (happens_before b a) && a <> b

(** A topological sort of the accesses consistent with [happens_before];
    total by construction because the relation embeds in trace positions. *)
let linearize (t : t) : access list =
  (* Kahn's algorithm over the explicit relation *)
  let nodes = Array.of_list t.accesses in
  let n = Array.length nodes in
  let picked = Array.make n false in
  let out = ref [] in
  let remaining = ref n in
  while !remaining > 0 do
    let progress = ref false in
    for i = 0 to n - 1 do
      if (not picked.(i))
         && (not !progress)
         (* minimal element: no unpicked predecessor *)
         &&
         let has_pred = ref false in
         for j = 0 to n - 1 do
           if (not picked.(j)) && j <> i && happens_before nodes.(j) nodes.(i)
           then has_pred := true
         done;
         not !has_pred
      then begin
        picked.(i) <- true;
        out := nodes.(i) :: !out;
        decr remaining;
        progress := true
      end
    done;
    if not !progress then failwith "Partial_order.linearize: cycle"
  done;
  List.rev !out

(** Replay a linearization against a fresh SC memory and check that every
    read observes the value it observed in the original push/pull
    execution — the "same execution results" half of the paper's
    Theorem 2. Initial values are supplied by [init]. *)
let replay_matches ?(init = fun (_ : Loc.t) -> 0) (lin : access list) : bool
    =
  let mem = Hashtbl.create 16 in
  let read loc =
    match Hashtbl.find_opt mem loc with Some v -> v | None -> init loc
  in
  List.for_all
    (fun a ->
      match a.a_kind with
      | K_read -> read a.a_loc = a.a_value
      | K_write ->
          Hashtbl.replace mem a.a_loc a.a_value;
          true
      | K_rmw ->
          (* a_value records the written value; the read part is the
             pre-state, which must equal what memory holds *)
          Hashtbl.replace mem a.a_loc a.a_value;
          true)
    lin

(** Check that a linearization respects the partial order. *)
let consistent (t : t) (lin : access list) : bool =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i a -> Hashtbl.replace pos a i) lin;
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          if happens_before a b then Hashtbl.find pos a < Hashtbl.find pos b
          else true)
        t.accesses)
    t.accesses
