(** The executable wDRF theorem (paper Theorem 1/2/4).

    For a program certified wDRF, every observable behavior under the
    Promising Arm model must already be observable under the SC model —
    behavior-set inclusion, decided here by exhaustive bounded
    exploration. Only [Normal] (completed) outcomes participate:
    fuel-exhausted snapshots are exploration artifacts of unrolled spin
    loops, not program behaviors. Panic reachability is compared
    separately: a program that can panic on RM but not on SC also violates
    the theorem (Example 7). *)

open Memmodel

type verdict = {
  holds : bool;
  sc : Behavior.t;
  rm : Behavior.t;
  rm_only : Behavior.t;  (** completed RM behaviors invisible on SC *)
  sc_panics : bool;
  rm_panics : bool;
  bounded : bool;  (** some path hit the loop-fuel bound *)
  witnesses : (Behavior.outcome * Promising.step list) list;
      (** for each RM outcome, the first schedule that produced it;
          [witness_for] selects the schedule of a violating behavior *)
  sc_stats : Engine.stats;
  rm_stats : Engine.stats;
}

let normals (b : Behavior.t) : Behavior.t =
  Behavior.Outcome_set.filter
    (fun o -> o.Behavior.status = Behavior.Normal)
    b

let check ?(sc_fuel = 8) ?(config = Promising.default_config) ?jobs
    ?deadline ?por ?strategy (prog : Prog.t) : verdict =
  let sc, sc_stats =
    Sc.run_stats ~fuel:sc_fuel ?jobs ?deadline ?por ?strategy prog
  in
  let rm, witnesses, rm_stats =
    Promising.run_full ~config ?jobs ?deadline ?strategy prog
  in
  let rm_only = Behavior.diff (normals rm) (normals sc) in
  let sc_panics = Behavior.any_panic sc in
  let rm_panics = Behavior.any_panic rm in
  { holds = Behavior.Outcome_set.is_empty rm_only && (rm_panics <= sc_panics);
    sc;
    rm;
    rm_only;
    sc_panics;
    rm_panics;
    bounded =
      Behavior.any_fuel_exhausted sc || Behavior.any_fuel_exhausted rm;
    witnesses;
    sc_stats;
    rm_stats }

(** The schedule that produced [outcome] (for RM-only behaviors: the
    concrete relaxed execution, promises included, that SC cannot
    match). *)
let witness_for (v : verdict) (outcome : Behavior.outcome) :
    Promising.step list option =
  List.assoc_opt outcome v.witnesses

(** The first RM-only behavior together with its schedule. *)
let first_violation (v : verdict) :
    (Behavior.outcome * Promising.step list) option =
  match Behavior.elements v.rm_only with
  | [] -> None
  | o :: _ -> (
      match witness_for v o with Some w -> Some (o, w) | None -> None)

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Refinement: HOLDS — all %d completed RM behaviors visible on SC \
       (%d SC behaviors)%s"
      (Behavior.cardinal (normals v.rm))
      (Behavior.cardinal (normals v.sc))
      (if v.bounded then " [bounded exploration]" else "")
  else begin
    Format.fprintf fmt
      "Refinement: VIOLATED — %d RM-only behaviors%s:@,%a"
      (Behavior.cardinal v.rm_only)
      (if v.rm_panics && not v.sc_panics then " (and RM-only panic)" else "")
      Behavior.pp v.rm_only;
    match first_violation v with
    | Some (o, steps) ->
        Format.fprintf fmt "@,@[<v2>witness schedule for %a:@,%a@]"
          Behavior.pp_outcome o Promising.pp_schedule steps
    | None -> ()
  end
