(** The executable wDRF theorem (paper Theorem 1/2/4).

    For a program certified wDRF, every observable behavior under the
    Promising Arm model must already be observable under the SC model —
    behavior-set inclusion, decided here by exhaustive bounded
    exploration. Only [Normal] (completed) outcomes participate:
    fuel-exhausted snapshots are exploration artifacts of unrolled spin
    loops, not program behaviors. Panic reachability is compared
    separately: a program that can panic on RM but not on SC also violates
    the theorem (Example 7). *)

open Memmodel

type verdict = {
  holds : bool;
  sc : Behavior.t;
  rm : Behavior.t;
  rm_only : Behavior.t;  (** completed RM behaviors invisible on SC *)
  sc_panics : bool;
  rm_panics : bool;
  bounded : bool;  (** some path hit the loop-fuel bound *)
  witnesses : (Behavior.outcome * Promising.step list) list;
      (** for each RM outcome, the first schedule that produced it;
          [witness_for] selects the schedule of a violating behavior *)
  sc_stats : Engine.stats;
  rm_stats : Engine.stats;
}

let normals (b : Behavior.t) : Behavior.t =
  Behavior.Outcome_set.filter
    (fun o -> o.Behavior.status = Behavior.Normal)
    b

let check ?(sc_fuel = 8) ?(config = Promising.default_config) ?jobs
    ?deadline ?por ?strategy (prog : Prog.t) : verdict =
  let sc, sc_stats =
    Sc.run_stats ~fuel:sc_fuel ?jobs ?deadline ?por ?strategy prog
  in
  let rm, witnesses, rm_stats =
    Promising.run_full ~config ?jobs ?deadline ?strategy prog
  in
  let rm_only = Behavior.diff (normals rm) (normals sc) in
  let sc_panics = Behavior.any_panic sc in
  let rm_panics = Behavior.any_panic rm in
  { holds = Behavior.Outcome_set.is_empty rm_only && (rm_panics <= sc_panics);
    sc;
    rm;
    rm_only;
    sc_panics;
    rm_panics;
    bounded =
      Behavior.any_fuel_exhausted sc || Behavior.any_fuel_exhausted rm;
    witnesses;
    sc_stats;
    rm_stats }

(* ------------------------------------------------------------------ *)
(* Corpus-level parallel scheduling                                    *)
(* ------------------------------------------------------------------ *)
(* Parallelizing *within* one small search is a losing trade: the
   shared-seen-set handshakes cost more than the explored subtrees they
   distribute. The outer layer below instead distributes independent
   refinement obligations (corpus entries) across domains, keeps each
   inner search sequential while it stays under a visited-states
   threshold, and lets a genuinely large search borrow whatever part of
   the global [?jobs] budget is currently idle. *)

(* Counting semaphore over the shared jobs budget: workers borrow extra
   domains for a big inner search and return them when it finishes.
   Never blocks — a borrower takes what is free right now (possibly
   nothing) rather than waiting on tokens another search is using. *)
module Budget = struct
  type t = { lock : Mutex.t; mutable free : int }

  let create n = { lock = Mutex.create (); free = max 0 n }

  let take t want =
    Mutex.lock t.lock;
    let got = min (max 0 want) t.free in
    t.free <- t.free - got;
    Mutex.unlock t.lock;
    got

  let give t n =
    Mutex.lock t.lock;
    t.free <- t.free + n;
    Mutex.unlock t.lock
end

let default_inner_threshold = 20_000

(* Probe-then-commit: run the check sequentially with the Promising
   state valve lowered to [inner_threshold]. If the probe finishes
   inside the valve, the state space was small and the sequential run
   *is* the answer — no parallel overhead, nothing wasted. If the valve
   fires, the probe's bounded work is the (amortized-small) price of
   learning the search is big; re-run with the real valve and an inner
   fan-out of [1 + acquire ()] domains. A verdict cut short by the
   deadline is returned as-is — re-running an expired job buys
   nothing. *)
let adaptive_check ~sc_fuel ~config ?deadline ?por ?strategy
    ~inner_threshold ~acquire ~release prog : verdict =
  let probe_cfg =
    { config with
      Promising.max_states =
        min inner_threshold config.Promising.max_states }
  in
  let v = check ~sc_fuel ~config:probe_cfg ~jobs:1 ?deadline ?por ?strategy
      prog
  in
  let expired () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  if
    config.Promising.max_states <= inner_threshold
    || (not v.rm_stats.Engine.budget_hit)
    || expired ()
  then v
  else begin
    let extra = acquire () in
    Fun.protect
      ~finally:(fun () -> release extra)
      (fun () ->
        check ~sc_fuel ~config ~jobs:(1 + extra) ?deadline ?por ?strategy
          prog)
  end

let check_adaptive ?(sc_fuel = 8) ?(config = Promising.default_config)
    ?(jobs = 1) ?deadline ?por ?strategy
    ?(inner_threshold = default_inner_threshold) (prog : Prog.t) : verdict =
  (* the probe exists to avoid parallel-search overhead on small state
     spaces; with a single hardware thread there is no fan-out to gain,
     so the probe would be pure waste (same clamp the engine applies) *)
  let effective = min jobs (Domain.recommended_domain_count ()) in
  if effective <= 1 then
    check ~sc_fuel ~config ~jobs:1 ?deadline ?por ?strategy prog
  else
    adaptive_check ~sc_fuel ~config ?deadline ?por ?strategy
      ~inner_threshold
      ~acquire:(fun () -> jobs - 1)
      ~release:(fun _ -> ())
      prog

let check_many ?(sc_fuel = 8) ?(jobs = 1) ?deadline ?por ?strategy
    ?(inner_threshold = default_inner_threshold)
    (entries : (string * Prog.t * Promising.config) list) :
    (string * verdict) list =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  (* never spawn more workers than the hardware can run: extra domains
     on one core only multiplex and thrash the GC (the engine applies
     the same clamp to its inner fan-out) *)
  let outer =
    max 1 (min (min jobs (Domain.recommended_domain_count ())) n)
  in
  if n = 0 then []
  else if outer <= 1 then
    (* one domain available (or one entry): the whole budget goes to the
       inner search, as before the outer layer existed *)
    List.map
      (fun (name, prog, config) ->
        ( name,
          check_adaptive ~sc_fuel ~config ~jobs ?deadline ?por ?strategy
            ~inner_threshold prog ))
      entries
  else begin
    (* [outer] workers each hold one implicit token; the remainder of
       the global budget sits in the semaphore for big entries *)
    let budget = Budget.create (jobs - outer) in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let name, prog, config = arr.(i) in
          let v =
            adaptive_check ~sc_fuel ~config ?deadline ?por ?strategy
              ~inner_threshold
              ~acquire:(fun () -> Budget.take budget (jobs - 1))
              ~release:(fun got -> Budget.give budget got)
              prog
          in
          results.(i) <- Some (name, v);
          loop ()
        end
      in
      loop ()
    in
    let domains =
      Array.init (outer - 1) (fun _ -> Domain.spawn worker)
    in
    let main_exn = try worker (); None with e -> Some e in
    Array.iter Domain.join domains;
    (match main_exn with Some e -> raise e | None -> ());
    Array.to_list results |> List.filter_map Fun.id
  end

(** The schedule that produced [outcome] (for RM-only behaviors: the
    concrete relaxed execution, promises included, that SC cannot
    match). *)
let witness_for (v : verdict) (outcome : Behavior.outcome) :
    Promising.step list option =
  List.assoc_opt outcome v.witnesses

(** The first RM-only behavior together with its schedule. *)
let first_violation (v : verdict) :
    (Behavior.outcome * Promising.step list) option =
  match Behavior.elements v.rm_only with
  | [] -> None
  | o :: _ -> (
      match witness_for v o with Some w -> Some (o, w) | None -> None)

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Refinement: HOLDS — all %d completed RM behaviors visible on SC \
       (%d SC behaviors)%s"
      (Behavior.cardinal (normals v.rm))
      (Behavior.cardinal (normals v.sc))
      (if v.bounded then " [bounded exploration]" else "")
  else begin
    Format.fprintf fmt
      "Refinement: VIOLATED — %d RM-only behaviors%s:@,%a"
      (Behavior.cardinal v.rm_only)
      (if v.rm_panics && not v.sc_panics then " (and RM-only panic)" else "")
      Behavior.pp v.rm_only;
    match first_violation v with
    | Some (o, steps) ->
        Format.fprintf fmt "@,@[<v2>witness schedule for %a:@,%a@]"
          Behavior.pp_outcome o Promising.pp_schedule steps
    | None -> ()
  end
