(** The executable wDRF theorem (paper Theorem 1/2/4).

    For a program certified wDRF, every observable behavior under the
    Promising Arm model must already be observable under the SC model —
    behavior-set inclusion, decided here by exhaustive bounded
    exploration. Only [Normal] (completed) outcomes participate:
    fuel-exhausted snapshots are exploration artifacts of unrolled spin
    loops, not program behaviors. Panic reachability is compared
    separately: a program that can panic on RM but not on SC also violates
    the theorem (Example 7). *)

open Memmodel

type verdict = {
  holds : bool;
  sc : Behavior.t;
  rm : Behavior.t;
  rm_only : Behavior.t;  (** completed RM behaviors invisible on SC *)
  sc_panics : bool;
  rm_panics : bool;
  bounded : bool;  (** some path hit the loop-fuel bound *)
  witnesses : (Behavior.outcome * Promising.step list) list;
      (** for each RM outcome, the first schedule that produced it;
          [witness_for] selects the schedule of a violating behavior *)
  sc_stats : Engine.stats;
  rm_stats : Engine.stats;
}

let normals (b : Behavior.t) : Behavior.t =
  Behavior.Outcome_set.filter
    (fun o -> o.Behavior.status = Behavior.Normal)
    b

let check ?(sc_fuel = 8) ?(config = Promising.default_config) ?jobs
    ?deadline ?por ?sym (prog : Prog.t) : verdict =
  let sc, sc_stats =
    Sc.run_stats ~fuel:sc_fuel ?jobs ?deadline ?por ?sym prog
  in
  let rm, witnesses, rm_stats =
    Promising.run_full ~config ?jobs ?deadline ?por ?sym prog
  in
  let rm_only = Behavior.diff (normals rm) (normals sc) in
  let sc_panics = Behavior.any_panic sc in
  let rm_panics = Behavior.any_panic rm in
  { holds = Behavior.Outcome_set.is_empty rm_only && (rm_panics <= sc_panics);
    sc;
    rm;
    rm_only;
    sc_panics;
    rm_panics;
    bounded =
      Behavior.any_fuel_exhausted sc || Behavior.any_fuel_exhausted rm;
    witnesses;
    sc_stats;
    rm_stats }

(* ------------------------------------------------------------------ *)
(* Corpus-level parallel scheduling                                    *)
(* ------------------------------------------------------------------ *)
(* Parallelizing *within* one small search is a losing trade: the
   shared-seen-set handshakes cost more than the explored subtrees they
   distribute. The scheduler below therefore mixes the two levels: a
   {e probe} phase drains the corpus across domains with every inner
   search sequential (small entries — the vast majority — finish here),
   then the entries whose probe valve fired are re-run {e one at a time}
   with the whole [jobs] budget fanned out inside the engine as subtree
   tasks. A dominating entry gets every domain instead of the leftovers
   of a static outer/inner split. *)

(* Cursor fleet shared with {!Theorem4}: compute [f i] for every
   [i < n] on up to [outer] domains, work-sharing through one atomic
   cursor. Results come back in index order; the first worker exception
   wins, stops the fleet, and is re-raised after every domain joins. *)
let map_corpus ~outer n (f : int -> 'a) : 'a array =
  if n = 0 then [||]
  else begin
    let outer = max 1 (min outer n) in
    if outer <= 1 then begin
      let results = Array.make n None in
      for i = 0 to n - 1 do
        results.(i) <- Some (f i)
      done;
      Array.map Option.get results
    end
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let failure = Atomic.make None in
      let worker () =
        let rec loop () =
          if Atomic.get failure = None then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (match f i with
              | v -> results.(i) <- Some v
              | exception e ->
                  ignore (Atomic.compare_and_set failure None (Some e)));
              loop ()
            end
          end
        in
        loop ()
      in
      let domains =
        Array.init (outer - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      Array.iter Domain.join domains;
      match Atomic.get failure with
      | Some e -> raise e
      | None -> Array.map Option.get results
    end
  end

let default_inner_threshold = 20_000

let expired deadline =
  match deadline with
  | Some d -> Unix.gettimeofday () > d
  | None -> false

(* Probe: run the check sequentially with the Promising state valve
   lowered to [inner_threshold]. [Some v] — the probe finished inside
   the valve (or the deadline already expired, where a re-run buys
   nothing): the sequential run {e is} the answer, no parallel overhead,
   nothing wasted. [None] — the valve fired; the bounded probe work was
   the (amortized-small) price of learning the search is big, and the
   caller re-runs with the real valve and a full fan-out. *)
let probe ~sc_fuel ~config ?deadline ?por ?sym ~inner_threshold prog :
    verdict option =
  let probe_cfg =
    { config with
      Promising.max_states =
        min inner_threshold config.Promising.max_states }
  in
  let v =
    check ~sc_fuel ~config:probe_cfg ~jobs:1 ?deadline ?por ?sym prog
  in
  if
    config.Promising.max_states <= inner_threshold
    || (not v.rm_stats.Engine.budget_hit)
    || expired deadline
  then Some v
  else None

let check_adaptive ?(sc_fuel = 8) ?(config = Promising.default_config)
    ?(jobs = 1) ?deadline ?por ?sym
    ?(inner_threshold = default_inner_threshold) (prog : Prog.t) : verdict =
  (* never spawn more domains than the hardware can run: extra domains
     on one core only multiplex and thrash the GC. With a single
     hardware thread there is no fan-out to gain, so the probe would be
     pure waste: go straight to the sequential check. *)
  let jobs = max 1 (min jobs (Domain.recommended_domain_count ())) in
  if jobs <= 1 then
    check ~sc_fuel ~config ~jobs:1 ?deadline ?por ?sym prog
  else
    match
      probe ~sc_fuel ~config ?deadline ?por ?sym ~inner_threshold prog
    with
    | Some v -> v
    | None -> check ~sc_fuel ~config ~jobs ?deadline ?por ?sym prog

let check_many ?(sc_fuel = 8) ?(jobs = 1) ?deadline ?por ?sym
    ?(inner_threshold = default_inner_threshold)
    (entries : (string * Prog.t * Promising.config) list) :
    (string * verdict) list =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let jobs = max 1 (min jobs (Domain.recommended_domain_count ())) in
    let outer = min jobs n in
    (* a tiny corpus cannot amortize the full probe valve: a wasted
       probe there re-runs most of the corpus, so the valve scales down
       with the entry count *)
    let inner_threshold =
      if n < 2 * outer then max 1_000 (inner_threshold * n / (2 * outer))
      else inner_threshold
    in
    (* Phase 1 — probe the whole corpus, [outer] sequential searches at
       a time; small entries complete here *)
    let probed =
      map_corpus ~outer n (fun i ->
          let name, prog, config = arr.(i) in
          if jobs <= 1 then
            Some
              (name,
               check ~sc_fuel ~config ~jobs:1 ?deadline ?por ?sym prog)
          else
            probe ~sc_fuel ~config ?deadline ?por ?sym ~inner_threshold
              prog
            |> Option.map (fun v -> (name, v)))
    in
    (* Phase 2 — entries whose probe valve fired re-run one at a time,
       each with the whole [jobs] budget fanned out inside the engine
       (intra-entry subtree tasks saturate every domain) *)
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some nv -> nv
           | None ->
               let name, prog, config = arr.(i) in
               ( name,
                 check ~sc_fuel ~config ~jobs ?deadline ?por ?sym prog ))
         probed)
  end

(** The schedule that produced [outcome] (for RM-only behaviors: the
    concrete relaxed execution, promises included, that SC cannot
    match). *)
let witness_for (v : verdict) (outcome : Behavior.outcome) :
    Promising.step list option =
  List.assoc_opt outcome v.witnesses

(** The first RM-only behavior together with its schedule. *)
let first_violation (v : verdict) :
    (Behavior.outcome * Promising.step list) option =
  match Behavior.elements v.rm_only with
  | [] -> None
  | o :: _ -> (
      match witness_for v o with Some w -> Some (o, w) | None -> None)

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Refinement: HOLDS — all %d completed RM behaviors visible on SC \
       (%d SC behaviors)%s"
      (Behavior.cardinal (normals v.rm))
      (Behavior.cardinal (normals v.sc))
      (if v.bounded then " [bounded exploration]" else "")
  else begin
    Format.fprintf fmt
      "Refinement: VIOLATED — %d RM-only behaviors%s:@,%a"
      (Behavior.cardinal v.rm_only)
      (if v.rm_panics && not v.sc_panics then " (and RM-only panic)" else "")
      Behavior.pp v.rm_only;
    match first_violation v with
    | Some (o, steps) ->
        Format.fprintf fmt "@,@[<v2>witness schedule for %a:@,%a@]"
          Behavior.pp_outcome o Promising.pp_schedule steps
    | None -> ()
  end
