(** The executable wDRF theorem (paper Theorems 1/2/4): for a certified
    program, every completed behavior under the Promising Arm model is
    already visible under SC; panic reachability is compared separately
    (Example 7). Violations come with concrete witness schedules. *)

open Memmodel

type verdict = {
  holds : bool;
  sc : Behavior.t;
  rm : Behavior.t;
  rm_only : Behavior.t;  (** completed RM behaviors invisible on SC *)
  sc_panics : bool;
  rm_panics : bool;
  bounded : bool;  (** some path hit the loop-fuel bound *)
  witnesses : (Behavior.outcome * Promising.step list) list;
  sc_stats : Engine.stats;  (** SC exploration statistics *)
  rm_stats : Engine.stats;  (** Promising exploration statistics *)
}

val normals : Behavior.t -> Behavior.t

val check :
  ?sc_fuel:int -> ?config:Promising.config -> ?jobs:int ->
  ?deadline:float -> ?por:bool -> ?sym:bool -> Prog.t ->
  verdict
(** [jobs] fans both explorations across that many domains via the shared
    {!Engine} (identical behavior sets). [deadline] (absolute time)
    cancels both explorations when it passes; a cut-short verdict carries
    [stats.budget_hit] in its statistics. [por] (default on) applies
    partial-order reduction on both sides over {!Porlabel} footprints
    (Promising's oracle is certification-aware; it is forced off under
    [strict_certification]). [sym] (default on) applies thread-symmetry
    reduction ({!Symmetry}) on both sides — also forced off under
    [strict_certification] on the Promising side. Behavior sets are
    identical in every configuration. *)

val map_corpus : outer:int -> int -> (int -> 'a) -> 'a array
(** [map_corpus ~outer n f] computes [f i] for every [i < n] on up to
    [outer] domains, work-sharing through one atomic cursor; results
    come back in index order. The first worker exception wins, stops the
    fleet, and is re-raised after every domain joins. This is the corpus
    half of the scheduler, shared with {!Theorem4}; with [outer <= 1]
    it is a plain in-order loop (no domains spawned). *)

val default_inner_threshold : int
(** Visited-states threshold below which an inner search stays
    sequential (currently 20k states; {!check_many} scales it down for
    tiny corpora): parallel search on a state space this small loses
    more to shared-seen-set handshakes than it gains. *)

val check_adaptive :
  ?sc_fuel:int -> ?config:Promising.config -> ?jobs:int ->
  ?deadline:float -> ?por:bool -> ?sym:bool ->
  ?inner_threshold:int -> Prog.t ->
  verdict
(** Like {!check}, but adaptive about spending the [jobs] budget: the
    check first runs sequentially with the Promising state valve lowered
    to [inner_threshold]. A probe that completes {e is} the verdict —
    small searches never pay parallel overhead. Only when the valve
    fires is the check re-run with the full valve and the full [jobs]
    fan-out. On a single-hardware-thread machine the probe is skipped
    entirely (plain sequential {!check}): there is no fan-out to gain.
    Verdict fields are identical to {!check} in either case (statistics
    reflect the run that produced the verdict). *)

val check_many :
  ?sc_fuel:int -> ?jobs:int -> ?deadline:float -> ?por:bool ->
  ?sym:bool -> ?inner_threshold:int ->
  (string * Prog.t * Promising.config) list ->
  (string * verdict) list
(** The corpus scheduler: a {e probe} phase drains all entries across up
    to [jobs] domains (clamped to the hardware's
    [Domain.recommended_domain_count]) with every inner search
    sequential under the [inner_threshold] state valve (scaled down for
    corpora smaller than twice the fleet); then every entry whose valve
    fired is re-run {e one at a time} with the whole [jobs] budget
    fanned out inside the engine as intra-entry subtree tasks — a
    dominating entry saturates every domain instead of borrowing
    leftovers. Results are returned in input order, and every verdict
    equals what {!check} computes for that entry alone. *)

val witness_for : verdict -> Behavior.outcome -> Promising.step list option
(** The schedule that produced an outcome — for RM-only behaviors, the
    concrete relaxed execution (promises included) SC cannot match. *)

val first_violation : verdict -> (Behavior.outcome * Promising.step list) option
val pp_verdict : Format.formatter -> verdict -> unit
