(** The executable wDRF theorem (paper Theorems 1/2/4): for a certified
    program, every completed behavior under the Promising Arm model is
    already visible under SC; panic reachability is compared separately
    (Example 7). Violations come with concrete witness schedules. *)

open Memmodel

type verdict = {
  holds : bool;
  sc : Behavior.t;
  rm : Behavior.t;
  rm_only : Behavior.t;  (** completed RM behaviors invisible on SC *)
  sc_panics : bool;
  rm_panics : bool;
  bounded : bool;  (** some path hit the loop-fuel bound *)
  witnesses : (Behavior.outcome * Promising.step list) list;
  sc_stats : Engine.stats;  (** SC exploration statistics *)
  rm_stats : Engine.stats;  (** Promising exploration statistics *)
}

val normals : Behavior.t -> Behavior.t

val check :
  ?sc_fuel:int -> ?config:Promising.config -> ?jobs:int ->
  ?deadline:float -> ?por:bool -> ?strategy:Engine.strategy -> Prog.t ->
  verdict
(** [jobs] fans both explorations across that many domains via the shared
    {!Engine} (identical behavior sets). [deadline] (absolute time)
    cancels both explorations when it passes; a cut-short verdict carries
    [stats.budget_hit] in its statistics. [por] (default on) applies
    partial-order reduction to the SC side (Promising runs exact);
    [strategy] selects the parallel search algorithm. Behavior sets are
    identical in every configuration. *)

val witness_for : verdict -> Behavior.outcome -> Promising.step list option
(** The schedule that produced an outcome — for RM-only behaviors, the
    concrete relaxed execution (promises included) SC cannot match. *)

val first_violation : verdict -> (Behavior.outcome * Promising.step list) option
val pp_verdict : Format.formatter -> verdict -> unit
