(** The executable wDRF theorem (paper Theorems 1/2/4): for a certified
    program, every completed behavior under the Promising Arm model is
    already visible under SC; panic reachability is compared separately
    (Example 7). Violations come with concrete witness schedules. *)

open Memmodel

type verdict = {
  holds : bool;
  sc : Behavior.t;
  rm : Behavior.t;
  rm_only : Behavior.t;  (** completed RM behaviors invisible on SC *)
  sc_panics : bool;
  rm_panics : bool;
  bounded : bool;  (** some path hit the loop-fuel bound *)
  witnesses : (Behavior.outcome * Promising.step list) list;
  sc_stats : Engine.stats;  (** SC exploration statistics *)
  rm_stats : Engine.stats;  (** Promising exploration statistics *)
}

val normals : Behavior.t -> Behavior.t

val check :
  ?sc_fuel:int -> ?config:Promising.config -> ?jobs:int ->
  ?deadline:float -> ?por:bool -> ?strategy:Engine.strategy -> Prog.t ->
  verdict
(** [jobs] fans both explorations across that many domains via the shared
    {!Engine} (identical behavior sets). [deadline] (absolute time)
    cancels both explorations when it passes; a cut-short verdict carries
    [stats.budget_hit] in its statistics. [por] (default on) applies
    partial-order reduction to the SC side (Promising runs exact);
    [strategy] selects the parallel search algorithm. Behavior sets are
    identical in every configuration. *)

val default_inner_threshold : int
(** Visited-states threshold below which an inner search stays
    sequential (currently 20k states): parallel search on a state space
    this small loses more to shared-seen-set handshakes than it gains. *)

val check_adaptive :
  ?sc_fuel:int -> ?config:Promising.config -> ?jobs:int ->
  ?deadline:float -> ?por:bool -> ?strategy:Engine.strategy ->
  ?inner_threshold:int -> Prog.t ->
  verdict
(** Like {!check}, but adaptive about spending the [jobs] budget: the
    check first runs sequentially with the Promising state valve lowered
    to [inner_threshold]. A probe that completes {e is} the verdict —
    small searches never pay parallel overhead. Only when the valve
    fires is the check re-run with the full valve and the full [jobs]
    fan-out. On a single-hardware-thread machine the probe is skipped
    entirely (plain sequential {!check}): there is no fan-out to gain.
    Verdict fields are identical to {!check} in either case (statistics
    reflect the run that produced the verdict). *)

val check_many :
  ?sc_fuel:int -> ?jobs:int -> ?deadline:float -> ?por:bool ->
  ?strategy:Engine.strategy -> ?inner_threshold:int ->
  (string * Prog.t * Promising.config) list ->
  (string * verdict) list
(** Corpus-level parallel scheduling: distribute independent refinement
    obligations across up to [jobs] domains (clamped to the hardware's
    [Domain.recommended_domain_count]; one worker per entry at a time,
    work-sharing through an atomic cursor), keeping each inner
    search sequential below [inner_threshold] visited states. The
    [jobs] budget is shared globally: [outer] workers hold one domain
    each and a big entry (probe valve fired) borrows whatever is left —
    so the process never runs more than [jobs] domains' worth of search.
    Results are returned in input order, and every verdict equals what
    {!check} computes for that entry alone. *)

val witness_for : verdict -> Behavior.outcome -> Promising.step list option
(** The schedule that produced an outcome — for RM-only behaviors, the
    concrete relaxed execution (promises included) SC cannot match. *)

val first_violation : verdict -> (Behavior.outcome * Promising.step list) option
val pp_verdict : Format.formatter -> verdict -> unit
