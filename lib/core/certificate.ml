(** The wDRF certificate: the executable analog of "SeKVM satisfies the
    weakened wDRF conditions" (paper §5, Table 1's middle row).

    Certification of one KVM version runs two kinds of audits:

    {ul
    {- {b Program audits} over the DSL corpus ({!Sekvm.Kernel_progs}):
       DRF-Kernel via push/pull exploration, No-Barrier-Misuse via the
       fulfillment checker, and the refinement theorem (RM ⊆ SC) via the
       two executors. Seeded buggy variants must fail exactly the
       conditions they violate.}
    {- {b System audits} over a full SeKVM run ({!Scenario.standard_run})
       with the version's stage-2 geometry: Write-Once on the EL2 trace,
       Sequential-TLB-Invalidation on the stage-2/SMMU trace,
       Transactional-Page-Table on freshly planned map/unmap batches (and
       rejection of the Example 5 batch), and (Weak-)Memory-Isolation on
       the final state, traces and an oracle-independence experiment.}} *)

open Sekvm

type program_report = {
  entry : Kernel_progs.entry;
  drf : Check_drf.verdict;
  barrier : Check_barrier.verdict;
  refine : Refinement.verdict;
  as_expected : bool;
}

type system_report = {
  write_once : Check_write_once.verdict;
  tlbi : Check_tlbi.verdict;
  transactional_map : Check_transactional.verdict;
  transactional_map_deep : Check_transactional.verdict;
      (** map requiring fresh intermediate tables *)
  transactional_unmap : Check_transactional.verdict;
  example5_rejected : bool;
  isolation : Check_isolation.verdict;
  attacks_denied : bool;
  oracle_independent : bool;
  theorem4 : bool;
      (** Example 7's kernel behaviors covered by synthesized SC user
          programs (the Weak-Memory-Isolation payoff, §4.3) *)
}

type report = {
  version : Kernel_progs.version;
  programs : program_report list;
  system : system_report;
  certified : bool;
}

let audit_program (e : Kernel_progs.entry) : program_report =
  let drf =
    Check_drf.check ~exempt:e.Kernel_progs.exempt
      ~initial_owners:e.Kernel_progs.initial_owners e.Kernel_progs.prog
  in
  let barrier = Check_barrier.check e.Kernel_progs.prog in
  let refine =
    Refinement.check ~config:e.Kernel_progs.rm_config e.Kernel_progs.prog
  in
  let ex = e.Kernel_progs.expect in
  { entry = e;
    drf;
    barrier;
    refine;
    as_expected =
      drf.Check_drf.holds = ex.Kernel_progs.e_drf
      && barrier.Check_barrier.holds = ex.Kernel_progs.e_barrier
      && refine.Refinement.holds = ex.Kernel_progs.e_refine }

let geometry_of (v : Kernel_progs.version) =
  if v.Kernel_progs.stage2_levels = 3 then Machine.Page_table.three_level
  else Machine.Page_table.four_level

(** System-level audit for one version: run the standard scenario on that
    stage-2 geometry, then judge the traces and fresh page-table batches. *)
let audit_system (version : Kernel_progs.version) : system_report =
  let config =
    { Kcore.default_boot_config with
      stage2_geometry = geometry_of version }
  in
  let out = Scenario.standard_run ~config () in
  let kcore = out.Scenario.kcore in
  (* trace-based conditions *)
  let write_once = Check_write_once.check kcore.Kcore.trace in
  let tlbi = Check_tlbi.check kcore.Kcore.trace in
  (* transactional audits on a fresh VM's table *)
  let vmid = Kcore.register_vm kcore ~cpu:0 in
  let npt = (Kcore.find_vm kcore vmid).Kcore.npt in
  let free_pfn = List.hd out.Scenario.kserv.Kserv.free_pfns in
  let ipa = Machine.Page_table.page_va 77 in
  let tx_map_deep =
    (* first mapping: allocates every intermediate level *)
    match
      Check_transactional.audit_map npt ~cpu:0 ~ipa ~pfn:free_pfn
        ~perms:Machine.Pte.rw ~check_vas:[ ipa + 4096 ]
    with
    | Ok v -> v
    | Error `Already_mapped -> Kcore.panic "certify: unexpected mapping"
  in
  let tx_map =
    (* second mapping in the same leaf table: single-write case *)
    match
      Check_transactional.audit_map npt ~cpu:0 ~ipa:(ipa + 4096)
        ~pfn:free_pfn ~perms:Machine.Pte.rw ~check_vas:[ ipa ]
    with
    | Ok v -> v
    | Error `Already_mapped -> Kcore.panic "certify: unexpected mapping"
  in
  let tx_unmap =
    match
      Check_transactional.audit_unmap npt ~cpu:0 ~ipa
        ~check_vas:[ ipa + 4096 ]
    with
    | Ok v -> v
    | Error `Not_mapped -> Kcore.panic "certify: mapping disappeared"
  in
  let example5_rejected =
    match
      Check_transactional.audit_example5 npt ~ipa:(ipa + 4096)
        ~pfn:free_pfn ~perms:Machine.Pte.rw
    with
    | Some v -> not v.Check_transactional.holds
    | None -> false
  in
  let isolation = Check_isolation.check kcore in
  let attacks_denied =
    List.for_all snd out.Scenario.attack_results
  in
  (* oracle independence: same oracle seed, different user behavior, same
     kernel digest *)
  let oracle_independent =
    Check_isolation.oracle_independent ~behaviors:[ 0; 1; 2 ]
      ~scenario:(fun ~user ->
        let config =
          { config with Kcore.oracle_seed = 42 }
        in
        let kcore, kserv = Scenario.boot_system ~config () in
        (match Kserv.boot_vm kserv ~cpu:0 ~n_vcpus:1 ~image_pages:2 with
        | Ok vmid ->
            (* user-dependent guest behavior: different payloads/pages *)
            ignore
              (Kserv.run_guest kserv ~cpu:1 ~vmid ~vcpuid:0
                 [ Vm.G_write
                     ( Machine.Page_table.page_va 30,
                       0x1000 + (user * 57) );
                   Vm.G_read (Machine.Page_table.page_va 30) ])
        | Error _ -> ());
        Check_isolation.kernel_digest kcore)
  in
  let theorem4 =
    (Theorem4.check
       ~config:
         { Memmodel.Promising.default_config with max_promises = 1;
           loop_fuel = 4 }
       { Theorem4.kernel_tids = [ 3 ]; user_tids = [ 1; 2 ] }
       Memmodel.Paper_examples.example7.Memmodel.Litmus.prog)
      .Theorem4.holds
  in
  { write_once;
    tlbi;
    transactional_map = tx_map;
    transactional_map_deep = tx_map_deep;
    transactional_unmap = tx_unmap;
    example5_rejected;
    isolation;
    attacks_denied;
    oracle_independent;
    theorem4 }

let certify (version : Kernel_progs.version) : report =
  let programs =
    List.map audit_program
      (Kernel_progs.corpus @ Kernel_progs.buggy_corpus
      @ Kernel_progs.boundary_corpus)
  in
  let system = audit_system version in
  let certified =
    List.for_all (fun p -> p.as_expected) programs
    && system.write_once.Check_write_once.holds
    && system.tlbi.Check_tlbi.holds
    && system.transactional_map.Check_transactional.holds
    && system.transactional_map_deep.Check_transactional.holds
    && system.transactional_unmap.Check_transactional.holds
    && system.example5_rejected
    && system.isolation.Check_isolation.holds
    && system.attacks_denied
    && system.oracle_independent
    && system.theorem4
  in
  { version; programs; system; certified }

let certify_all () : report list =
  List.map certify Kernel_progs.versions

(* ------------------------------------------------------------------ *)
(* Cacheable summaries                                                 *)
(* ------------------------------------------------------------------ *)

type program_summary = {
  ps_name : string;
  ps_prog_digest : string;
  ps_drf : bool;
  ps_barrier : bool;
  ps_refine : bool;
  ps_as_expected : bool;
}

type summary = {
  s_linux : string;
  s_stage2_levels : int;
  s_programs : program_summary list;
  s_write_once : bool;
  s_tlbi : bool;
  s_transactional : bool;
  s_example5_rejected : bool;
  s_isolation : bool;
  s_attacks_denied : bool;
  s_oracle_independent : bool;
  s_theorem4 : bool;
  s_certified : bool;
}

let summarize (r : report) : summary =
  { s_linux = r.version.Kernel_progs.linux;
    s_stage2_levels = r.version.Kernel_progs.stage2_levels;
    s_programs =
      List.map
        (fun (p : program_report) ->
          { ps_name = p.entry.Kernel_progs.name;
            ps_prog_digest =
              Memmodel.Fingerprint.prog p.entry.Kernel_progs.prog;
            ps_drf = p.drf.Check_drf.holds;
            ps_barrier = p.barrier.Check_barrier.holds;
            ps_refine = p.refine.Refinement.holds;
            ps_as_expected = p.as_expected })
        r.programs;
    s_write_once = r.system.write_once.Check_write_once.holds;
    s_tlbi = r.system.tlbi.Check_tlbi.holds;
    s_transactional =
      r.system.transactional_map.Check_transactional.holds
      && r.system.transactional_map_deep.Check_transactional.holds
      && r.system.transactional_unmap.Check_transactional.holds;
    s_example5_rejected = r.system.example5_rejected;
    s_isolation = r.system.isolation.Check_isolation.holds;
    s_attacks_denied = r.system.attacks_denied;
    s_oracle_independent = r.system.oracle_independent;
    s_theorem4 = r.system.theorem4;
    s_certified = r.certified }

let pp_summary fmt (s : summary) =
  let flag b = if b then "ok" else "FAIL" in
  Format.fprintf fmt
    "@[<v>Linux %s (%d-level stage-2): %s@,\
    \  programs as expected: %d/%d@,\
    \  write-once=%s tlbi=%s transactional=%s example5-rejected=%s@,\
    \  isolation=%s attacks-denied=%s oracle-independent=%s theorem4=%s@]"
    s.s_linux s.s_stage2_levels
    (if s.s_certified then "CERTIFIED" else "FAILED")
    (List.length (List.filter (fun p -> p.ps_as_expected) s.s_programs))
    (List.length s.s_programs)
    (flag s.s_write_once) (flag s.s_tlbi) (flag s.s_transactional)
    (flag s.s_example5_rejected) (flag s.s_isolation)
    (flag s.s_attacks_denied) (flag s.s_oracle_independent)
    (flag s.s_theorem4)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let pp_program_report fmt (p : program_report) =
  Format.fprintf fmt "@[<v2>%s (%s):@,%a@,%a@,%a@,verdicts %s@]"
    p.entry.Kernel_progs.name p.entry.Kernel_progs.note Check_drf.pp_verdict
    p.drf Check_barrier.pp_verdict p.barrier Refinement.pp_verdict p.refine
    (if p.as_expected then "as expected" else "UNEXPECTED")

let pp_report fmt (r : report) =
  Format.fprintf fmt
    "@[<v>== wDRF certificate: Linux %s, %d-level stage-2 ==@,\
     @[<v2>program audits:@,%a@]@,\
     @[<v2>system audits:@,%a@,%a@,%a (single-write map)@,%a (deep map)@,\
     %a (unmap)@,Example 5 batch rejected: %b@,%a@,\
     all KServ attacks denied: %b@,oracle independence: %b@,\
     Theorem 4 (weak isolation payoff): %b@]@,\
     CERTIFIED: %b@]"
    r.version.Kernel_progs.linux r.version.Kernel_progs.stage2_levels
    (Format.pp_print_list pp_program_report)
    r.programs Check_write_once.pp_verdict r.system.write_once
    Check_tlbi.pp_verdict r.system.tlbi Check_transactional.pp_verdict
    r.system.transactional_map Check_transactional.pp_verdict
    r.system.transactional_map_deep Check_transactional.pp_verdict
    r.system.transactional_unmap r.system.example5_rejected
    Check_isolation.pp_verdict r.system.isolation r.system.attacks_denied
    r.system.oracle_independent r.system.theorem4 r.certified
