(** Executable Theorem 4 (paper §4.3): under Weak-Memory-Isolation, for
    any execution of kernel P with user program Q on the Promising Arm
    model, there is a user program Q' such that P with Q' on SC exhibits
    the same kernel-observable behavior.

    The construction is the paper's own: since the kernel's verification
    does not depend on the user's implementation, Q can be replaced by a
    program that simply writes the required values into user memory. Here
    that is made effective:

    {ol
    {- run P ∪ Q under Promising Arm and project the behaviors onto the
       kernel's observables;}
    {- synthesize Q' as one straight-line thread that writes a
       nondeterministically chosen value (from a finite domain) to each
       location Q can write — an executable "data oracle";}
    {- run P ∪ Q' under SC and project likewise;}
    {- check that every relaxed kernel behavior (including panics) is
       covered.}}

    The checker returns the uncovered kernel behaviors, if any; for
    kernel fragments satisfying the weakened wDRF conditions the set must
    be empty, which is exactly Theorem 4's statement. *)

open Memmodel

type split = {
  kernel_tids : int list;  (** threads that are kernel code *)
  user_tids : int list;  (** threads standing in for user programs / VMs *)
}

(** Kernel-observable projection: keep [Obs_loc] entries and the kernel
    threads' registers; user registers are the user's business. *)
let project (split : split) (prog : Prog.t) (b : Behavior.t) : Behavior.t =
  ignore prog;
  List.fold_left
    (fun acc (o : Behavior.outcome) ->
      let values =
        List.filter
          (fun (obs, _) ->
            match obs with
            | Prog.Obs_loc _ -> true
            | Prog.Obs_reg (tid, _) -> List.mem tid split.kernel_tids)
          o.Behavior.values
      in
      Behavior.add (Behavior.outcome ~status:o.Behavior.status values) acc)
    Behavior.empty (Behavior.elements b)

(** Locations the user threads can write (syntactically). *)
let user_written_bases (split : split) (prog : Prog.t) : string list =
  List.sort_uniq compare
    (List.concat_map
       (fun th ->
         if List.mem th.Prog.tid split.user_tids then
           let rec writes (i : Instr.t) =
             match i with
             | Instr.Store (a, _, _) | Instr.Faa (_, a, _, _)
             | Instr.Xchg (_, a, _, _) | Instr.Cas (_, a, _, _, _) ->
                 [ a.Expr.abase ]
             | Instr.If (_, x, y) -> List.concat_map writes (x @ y)
             | Instr.While (_, x) -> List.concat_map writes x
             | _ -> []
           in
           List.concat_map writes th.Prog.code
         else [])
       prog.Prog.threads)

(** Synthesize Q': for each user-writable base, one oracle thread that
    either leaves it alone or stores a value from [value_domain]. The
    nondeterminism is encoded by enumerating the straight-line variants
    (each is a different Q'); the theorem only asks that {e some} Q'
    matches each relaxed behavior, so the SC behaviors are the union. *)
let synthesize_q' ?(value_domain = [ 0; 1; 2; 3 ]) (split : split)
    (prog : Prog.t) : Prog.t list =
  let bases = user_written_bases split prog in
  let fresh_tid =
    1 + List.fold_left (fun m th -> max m th.Prog.tid) 0 prog.Prog.threads
  in
  let kernel_threads =
    List.filter
      (fun th -> List.mem th.Prog.tid split.kernel_tids)
      prog.Prog.threads
  in
  (* all assignments of (no-write | value) to the bases *)
  let rec assignments = function
    | [] -> [ [] ]
    | b :: rest ->
        let tails = assignments rest in
        List.concat_map
          (fun t ->
            (None :: List.map (fun v -> Some (b, v)) value_domain)
            |> List.map (fun choice -> choice :: t))
          tails
  in
  List.map
    (fun assignment ->
      let writes =
        List.filter_map
          (Option.map (fun (b, v) -> Instr.store (Expr.at b) (Expr.c v)))
          assignment
      in
      Prog.make ~name:(prog.Prog.name ^ "-q'")
        ~init:prog.Prog.init
        ~observables:prog.Prog.observables
        ~shared_bases:prog.Prog.shared_bases
        (kernel_threads @ [ Prog.thread fresh_tid writes ]))
    (assignments bases)

type verdict = {
  holds : bool;
  rm_kernel : Behavior.t;  (** kernel-projected behaviors of P ∪ Q on RM *)
  sc_kernel : Behavior.t;  (** union over Q' of P ∪ Q' on SC *)
  uncovered : Behavior.t;
  q'_count : int;
  rm_stats : Engine.stats;
  sc_stats : Engine.stats;  (** aggregated over all Q' explorations *)
}

(** Check Theorem 4 for [prog] with the given kernel/user split. *)
let check ?(config = Promising.default_config) ?(sc_fuel = 8) ?value_domain
    ?jobs ?por ?sym (split : split) (prog : Prog.t) : verdict =
  let rm, rm_stats = Promising.run_stats ~config ?jobs ?por ?sym prog in
  let rm_kernel = project split prog rm in
  let q's = synthesize_q' ?value_domain split prog in
  (* The Q' obligations are independent and individually tiny, so the
     [jobs] budget is spent at the corpus level through the shared
     cursor fleet ({!Refinement.map_corpus}): one domain per oracle
     program, each explored sequentially — not [jobs] domains fighting
     over one small state space. (A single Q' gets the whole budget
     inside the engine instead.) Projection and union are
     order-insensitive, so the combined behavior set is identical to the
     sequential fold's. *)
  let sc_kernel, sc_stats =
    let jobs = match jobs with Some j -> max 1 j | None -> 1 in
    let arr = Array.of_list q's in
    let n = Array.length arr in
    let outer =
      max 1 (min (min jobs (Domain.recommended_domain_count ())) n)
    in
    let inner = if n = 1 then jobs else 1 in
    Refinement.map_corpus ~outer n (fun i ->
        let q' = arr.(i) in
        let b, s =
          Sc.run_stats ~fuel:sc_fuel ~jobs:inner ?por ?sym q'
        in
        (project split q' b, s))
    |> Array.fold_left
         (fun (acc, stats) (b, s) ->
           (Behavior.union acc b, Engine.add_stats stats s))
         (Behavior.empty, Engine.zero_stats)
  in
  (* compare completed behaviors and panics; fuel-exhausted paths are
     exploration artifacts *)
  let completed b =
    Behavior.Outcome_set.filter
      (fun o -> o.Behavior.status <> Behavior.Fuel_exhausted)
      b
  in
  let uncovered = Behavior.diff (completed rm_kernel) (completed sc_kernel) in
  { holds = Behavior.Outcome_set.is_empty uncovered;
    rm_kernel;
    sc_kernel;
    uncovered;
    q'_count = List.length q's;
    rm_stats;
    sc_stats }

let pp_verdict fmt v =
  if v.holds then
    Format.fprintf fmt
      "Theorem 4: HOLDS — every relaxed kernel behavior (%d) is matched by \
       some SC execution with a synthesized user program (%d candidates Q')"
      (Behavior.cardinal v.rm_kernel) v.q'_count
  else
    Format.fprintf fmt
      "Theorem 4: FAILS — %d kernel behaviors unmatched:@,%a"
      (Behavior.cardinal v.uncovered)
      Behavior.pp v.uncovered
