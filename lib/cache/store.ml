(** Content-addressed verification-result cache. See the interface for
    the keying rule and corruption contract.

    On-disk entry layout (one file per key, [<dir>/<key>.vrmc]):

    {v
    vrm-cache 1 <engine-version>\n
    <compact JSON payload>\n
    <md5 hex of the payload line>\n
    v}

    Reads re-derive the checksum and re-parse the payload; any mismatch,
    short read, unknown format version or engine-version skew is a miss. *)

let format_version = 1

type counters = {
  hits : int;
  misses : int;
  disk_hits : int;
  stores : int;
  corrupt : int;
  entries : int;
}

type t = {
  dir : string option;
  engine_version : string;
  table : (string, Json.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable disk_hits : int;
  mutable stores : int;
  mutable corrupt : int;
  lock : Mutex.t;
}

let make_key ~engine_version ~model ~budgets ~prog_digest =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ engine_version; model; budgets; prog_digest ]))

let create ?dir ~engine_version () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  { dir;
    engine_version;
    table = Hashtbl.create 256;
    hits = 0;
    misses = 0;
    disk_hits = 0;
    stores = 0;
    corrupt = 0;
    lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let path t key =
  match t.dir with
  | None -> None
  | Some d -> Some (Filename.concat d (key ^ ".vrmc"))

(* Read and validate a disk entry. Any deviation from the format is
   [Error `Corrupt]; a missing file is [Error `Absent]. Never raises. *)
let read_disk t key : (Json.t, [ `Absent | `Corrupt ]) result =
  match path t key with
  | None -> Error `Absent
  | Some file -> (
      match open_in_bin file with
      | exception _ -> Error `Absent
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let line () = try Some (input_line ic) with End_of_file -> None in
              match (line (), line (), line ()) with
              | Some header, Some payload, Some checksum -> (
                  let expected_header =
                    Printf.sprintf "vrm-cache %d %s" format_version
                      t.engine_version
                  in
                  if header <> expected_header then Error `Corrupt
                  else if Digest.to_hex (Digest.string payload) <> checksum
                  then Error `Corrupt
                  else
                    match Json.of_string payload with
                    | Ok v -> Ok v
                    | Error _ -> Error `Corrupt)
              | _ -> Error `Corrupt))

let write_disk t key (v : Json.t) =
  match path t key with
  | None -> ()
  | Some file -> (
      let payload = Json.to_string v in
      let tmp = file ^ ".tmp" in
      try
        let oc = open_out_bin tmp in
        Printf.fprintf oc "vrm-cache %d %s\n%s\n%s\n" format_version
          t.engine_version payload
          (Digest.to_hex (Digest.string payload));
        close_out oc;
        Sys.rename tmp file
      with _ -> (try Sys.remove tmp with _ -> ()))

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None -> (
          match read_disk t key with
          | Ok v ->
              Hashtbl.replace t.table key v;
              t.hits <- t.hits + 1;
              t.disk_hits <- t.disk_hits + 1;
              Some v
          | Error `Corrupt ->
              t.corrupt <- t.corrupt + 1;
              t.misses <- t.misses + 1;
              None
          | Error `Absent ->
              t.misses <- t.misses + 1;
              None))

let add t key v =
  locked t (fun () ->
      Hashtbl.replace t.table key v;
      t.stores <- t.stores + 1;
      write_disk t key v)

let drop_memory t = locked t (fun () -> Hashtbl.reset t.table)

let counters t =
  locked t (fun () ->
      { hits = t.hits;
        misses = t.misses;
        disk_hits = t.disk_hits;
        stores = t.stores;
        corrupt = t.corrupt;
        entries = Hashtbl.length t.table })

let pp_counters fmt (c : counters) =
  Format.fprintf fmt
    "hits=%d (disk %d) misses=%d stores=%d corrupt=%d entries=%d" c.hits
    c.disk_hits c.misses c.stores c.corrupt c.entries
