(** Content-addressed verification-result cache, disk tier. See the
    interface for the keying rule and corruption contract.

    On-disk entry layout (one file per key, [<dir>/<key>.vrmc]):

    {v
    vrm-cache 1 <engine-version>\n
    <compact JSON payload>\n
    <md5 hex of the payload line>\n
    v}

    Reads re-derive the checksum and re-parse the payload; any mismatch,
    short read, unknown format version or engine-version skew is a miss.

    This module is deliberately disk-only: every [find] pays the file
    open, the checksum and the JSON parse. The in-memory tier lives in
    {!Hot}, which fronts a store with a sharded, size-bounded LRU of
    decoded payloads — keeping the two tiers in separate modules keeps
    the disk path honest (benchmarkable on its own) and the memory
    policy (sharding, eviction) out of the persistence code. *)

let format_version = 1
let suffix = ".vrmc"

type counters = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  entries : int;
}

type t = {
  dir : string option;
  engine_version : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable corrupt : int;
  lock : Mutex.t;
}

let make_key ~engine_version ~model ~budgets ~prog_digest =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ engine_version; model; budgets; prog_digest ]))

let create ?dir ~engine_version () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  { dir;
    engine_version;
    hits = 0;
    misses = 0;
    stores = 0;
    corrupt = 0;
    lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let path t key =
  match t.dir with
  | None -> None
  | Some d -> Some (Filename.concat d (key ^ suffix))

(* Read and validate a disk entry. Any deviation from the format is
   [Error `Corrupt]; a missing file is [Error `Absent]. Never raises. *)
let read_disk t key : (Json.t, [ `Absent | `Corrupt ]) result =
  match path t key with
  | None -> Error `Absent
  | Some file -> (
      match open_in_bin file with
      | exception _ -> Error `Absent
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let line () = try Some (input_line ic) with End_of_file -> None in
              match (line (), line (), line ()) with
              | Some header, Some payload, Some checksum -> (
                  let expected_header =
                    Printf.sprintf "vrm-cache %d %s" format_version
                      t.engine_version
                  in
                  if header <> expected_header then Error `Corrupt
                  else if Digest.to_hex (Digest.string payload) <> checksum
                  then Error `Corrupt
                  else
                    match Json.of_string payload with
                    | Ok v -> Ok v
                    | Error _ -> Error `Corrupt)
              | _ -> Error `Corrupt))

let write_disk t key (v : Json.t) =
  match path t key with
  | None -> ()
  | Some file -> (
      let payload = Json.to_string v in
      let tmp = file ^ ".tmp" in
      try
        let oc = open_out_bin tmp in
        Printf.fprintf oc "vrm-cache %d %s\n%s\n%s\n" format_version
          t.engine_version payload
          (Digest.to_hex (Digest.string payload));
        close_out oc;
        Sys.rename tmp file
      with _ -> (try Sys.remove tmp with _ -> ()))

(* A hit refreshes the entry's mtime so [gc]'s LRU-by-mtime policy keeps
   warm entries and evicts genuinely cold ones, not merely old ones. *)
let touch t key =
  match path t key with
  | None -> ()
  | Some file -> ( try Unix.utimes file 0. 0. with _ -> ())

let find t key =
  locked t (fun () ->
      match read_disk t key with
      | Ok v ->
          t.hits <- t.hits + 1;
          touch t key;
          Some v
      | Error `Corrupt ->
          t.corrupt <- t.corrupt + 1;
          t.misses <- t.misses + 1;
          None
      | Error `Absent ->
          t.misses <- t.misses + 1;
          None)

let add t key v =
  locked t (fun () ->
      t.stores <- t.stores + 1;
      write_disk t key v)

let entry_names t =
  match t.dir with
  | None -> []
  | Some d -> (
      match Sys.readdir d with
      | exception _ -> []
      | files ->
          Array.to_list files
          |> List.filter (fun f -> Filename.check_suffix f suffix))

let entry_count t = List.length (entry_names t)

type gc_report = { examined : int; deleted : int; kept : int }

let gc t ~max_entries =
  let max_entries = max 0 max_entries in
  locked t (fun () ->
      match t.dir with
      | None -> { examined = 0; deleted = 0; kept = 0 }
      | Some d ->
          let stamped =
            List.filter_map
              (fun f ->
                let file = Filename.concat d f in
                match Unix.stat file with
                | exception _ -> None
                | st -> Some (file, st.Unix.st_mtime))
              (entry_names t)
          in
          (* oldest first; ties broken by name so the order (and hence
             the survivor set) is deterministic *)
          let ordered =
            List.sort
              (fun (fa, ta) (fb, tb) ->
                match compare ta tb with 0 -> compare fa fb | c -> c)
              stamped
          in
          let examined = List.length ordered in
          let excess = examined - max_entries in
          let deleted = ref 0 in
          List.iteri
            (fun i (file, _) ->
              if i < excess then (
                try
                  Sys.remove file;
                  incr deleted
                with _ -> ()))
            ordered;
          { examined; deleted = !deleted; kept = examined - !deleted })

let counters t =
  locked t (fun () ->
      { hits = t.hits;
        misses = t.misses;
        stores = t.stores;
        corrupt = t.corrupt;
        entries = entry_count t })

let pp_counters fmt (c : counters) =
  Format.fprintf fmt "hits=%d misses=%d stores=%d corrupt=%d entries=%d"
    c.hits c.misses c.stores c.corrupt c.entries
