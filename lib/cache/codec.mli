(** JSON codecs for verification results: the shared printer behind
    [vrm-cli litmus --json], the service protocol payloads and the
    on-disk cache entries.

    Every [*_of_json] is the exact inverse of its [*_to_json] on the
    values this library produces: behavior sets round-trip bit-identically
    (same {!Memmodel.Behavior.t}, same {!Memmodel.Fingerprint.behaviors}
    digest), which is what lets a cached result stand in for a recomputed
    one. Decoders raise {!Json.Decode} on malformed input — the cache
    store turns that into a miss. *)

open Memmodel

val behaviors_to_json : Behavior.t -> Json.t
val behaviors_of_json : Json.t -> Behavior.t

val stats_to_json : Engine.stats -> Json.t
val stats_of_json : Json.t -> Engine.stats

(** Plain-data view of a {!Litmus.result} (the [exists] closure and
    program body are replaced by the program digest). *)
type litmus_summary = {
  l_name : string;
  l_description : string;
  l_prog_digest : string;
  l_sc : Behavior.t;
  l_rm : Behavior.t;
  l_rm_only : Behavior.t;
  l_sc_sat : bool;
  l_rm_sat : bool;
  l_sc_panic : bool;
  l_rm_panic : bool;
  l_as_expected : bool;
  l_sc_stats : Engine.stats;
  l_rm_stats : Engine.stats;
}

val litmus_summary : Litmus.result -> litmus_summary
val litmus_to_json : litmus_summary -> Json.t
val litmus_of_json : Json.t -> litmus_summary

(** Plain-data view of a {!Vrm.Refinement.verdict}. *)
type refine_summary = {
  r_name : string;
  r_prog_digest : string;
  r_holds : bool;
  r_sc : Behavior.t;
  r_rm : Behavior.t;
  r_rm_only : Behavior.t;
  r_sc_panics : bool;
  r_rm_panics : bool;
  r_bounded : bool;
  r_violation : string option;  (** rendered first violating schedule *)
  r_sc_stats : Engine.stats;
  r_rm_stats : Engine.stats;
}

val refine_summary : name:string -> Prog.t -> Vrm.Refinement.verdict -> refine_summary
val refine_to_json : refine_summary -> Json.t
val refine_of_json : Json.t -> refine_summary

val static_refine_summary : name:string -> Prog.t -> refine_summary
(** The summary a static-analyzer [Pass] stands in for: [r_holds], no
    behavior sets (the exploration never ran), zero statistics. *)

val refine_to_json_static : refine_summary -> Json.t
(** {!refine_to_json} plus a [served_by:"static"] marker.
    {!refine_of_json} ignores the extra field, so static payloads decode
    like explored ones; {!refine_served_by_static} recovers the marker. *)

val refine_served_by_static : Json.t -> bool

(** Plain-data view of a litmus test decided by the SAT-based BMC
    backend: the Armv8 axiomatic ([rm]) and SC behavior sets with their
    bound-completeness flags, plus aggregate solver counters. *)
type bmc_summary = {
  b_name : string;
  b_description : string;
  b_prog_digest : string;
  b_rm : Behavior.t;
  b_sc : Behavior.t;
  b_rm_complete : bool;  (** no [While] hit the unrolling bound *)
  b_sc_complete : bool;
  b_rm_sat : bool;  (** the test's exists-clause under the Arm set *)
  b_models : int;  (** SAT models decoded, both modes *)
  b_vars : int;
  b_clauses : int;
  b_conflicts : int;
  b_wall_s : float;
}

val bmc_summary : Litmus.t -> rm:Bmc.result -> sc:Bmc.result -> bmc_summary
val bmc_to_json : bmc_summary -> Json.t
val bmc_of_json : Json.t -> bmc_summary

val certificate_to_json : Vrm.Certificate.summary -> Json.t
val certificate_of_json : Json.t -> Vrm.Certificate.summary
