(** Sharded in-memory hot tier in front of a {!Store}.

    Warm hits served from this tier never touch the disk: no file open,
    no checksum, no JSON re-parse — the decoded {!Json.t} payload is
    returned straight from memory. The tier is split into a power-of-two
    number of shards keyed by the leading byte of the (md5-hex) cache
    key; each shard has its own lock and its own size-bounded LRU list,
    so concurrent lookups on different shards never contend and the
    memory footprint is bounded by [capacity] decoded payloads overall.

    The tier is a write-through cache: {!add} stores to disk first, then
    fills the shard, so a crash never loses an entry the caller was told
    was cached. A disabled tier ([~enabled:false]) passes every call
    straight through to the store — the cache-off configuration used to
    assert digest parity. *)

type t

val create : ?shards:int -> ?capacity:int -> ?enabled:bool -> Store.t -> t
(** [create store] fronts [store]. [shards] (default 16) is rounded up
    to a power of two; [capacity] (default 1024) is the total entry
    bound, split evenly across shards (at least one per shard).
    [~enabled:false] makes both {!find} and {!add} bypass the tier. *)

val find : t -> string -> Json.t option
(** Shard first; on a shard miss, fall through to {!Store.find} and fill
    the shard with the decoded payload (evicting LRU entries past the
    shard bound). The disk read happens outside the shard lock. *)

val add : t -> string -> Json.t -> unit
(** Write-through: {!Store.add} first, then fill the shard. *)

val store : t -> Store.t
(** The backing disk tier (for its own counters, gc, etc.). *)

val enabled : t -> bool

type shard_counters = {
  s_hot_hits : int;
  s_disk_hits : int;
  s_misses : int;
  s_evictions : int;
  s_size : int;
}

type counters = {
  hot_hits : int;  (** served from a shard, zero disk I/O *)
  disk_hits : int;  (** shard miss, disk hit — payload promoted *)
  misses : int;  (** neither tier had it *)
  evictions : int;
  size : int;  (** current resident entries, all shards *)
  capacity : int;
  shard_count : int;
  per_shard : shard_counters array;
}

val counters : t -> counters
val counters_to_json : counters -> Json.t
val pp_counters : Format.formatter -> counters -> unit
