(** Sharded in-memory hot tier over {!Store}. See the interface for the
    contract; the implementation notes that matter:

    - Each shard is an independent monitor: its own [Mutex.t], its own
      hash table, its own intrusive doubly-linked LRU list. A lookup
      takes exactly one shard lock; two requests whose keys land on
      different shards never contend.
    - The shard index is decoded from the first two hex characters of
      the (md5) key and masked against the power-of-two shard count, so
      the mapping is stable across processes and needs no extra
      hashing. Non-hex keys fall back to [Hashtbl.hash].
    - The LRU list is intrusive (nodes carry their own prev/next), so
      promotion on a hit is O(1) pointer surgery under the shard lock
      with no allocation. *)

type node = {
  n_key : string;
  mutable n_value : Json.t;
  mutable n_prev : node option;
  mutable n_next : node option;
}

type shard = {
  lock : Mutex.t;
  table : (string, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable size : int;
  mutable hot_hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type t = {
  store : Store.t;
  shards : shard array;
  mask : int;
  per_shard_cap : int;
  on : bool;
}

type shard_counters = {
  s_hot_hits : int;
  s_disk_hits : int;
  s_misses : int;
  s_evictions : int;
  s_size : int;
}

type counters = {
  hot_hits : int;
  disk_hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
  shard_count : int;
  per_shard : shard_counters array;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(shards = 16) ?(capacity = 1024) ?(enabled = true) store =
  let nshards = pow2_at_least (max 1 shards) 1 in
  let per_shard_cap = max 1 (capacity / nshards) in
  { store;
    shards =
      Array.init nshards (fun _ ->
          { lock = Mutex.create ();
            table = Hashtbl.create 64;
            head = None;
            tail = None;
            size = 0;
            hot_hits = 0;
            disk_hits = 0;
            misses = 0;
            evictions = 0 });
    mask = nshards - 1;
    per_shard_cap;
    on = enabled }

let store t = t.store
let enabled t = t.on

let hex_nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let shard_index t key =
  let byte =
    if String.length key >= 2 then
      match (hex_nibble key.[0], hex_nibble key.[1]) with
      | Some hi, Some lo -> (hi * 16) + lo
      | _ -> Hashtbl.hash key
    else Hashtbl.hash key
  in
  byte land t.mask

let shard_of t key = t.shards.(shard_index t key)

let locked (s : shard) f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(* --- intrusive LRU list, all under the shard lock --- *)

let unlink (s : shard) n =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> s.head <- n.n_next);
  (match n.n_next with
  | Some x -> x.n_prev <- n.n_prev
  | None -> s.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front (s : shard) n =
  n.n_prev <- None;
  n.n_next <- s.head;
  (match s.head with Some h -> h.n_prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n

let promote (s : shard) n =
  if s.head != Some n then (
    unlink s n;
    push_front s n)

let evict_over_cap t (s : shard) =
  while s.size > t.per_shard_cap do
    match s.tail with
    | None -> s.size <- 0 (* unreachable: size > 0 implies a tail *)
    | Some lru ->
        unlink s lru;
        Hashtbl.remove s.table lru.n_key;
        s.size <- s.size - 1;
        s.evictions <- s.evictions + 1
  done

(* Insert or refresh [key] as the shard's MRU entry. *)
let fill t (s : shard) key value =
  (match Hashtbl.find_opt s.table key with
  | Some n ->
      n.n_value <- value;
      promote s n
  | None ->
      let n = { n_key = key; n_value = value; n_prev = None; n_next = None } in
      Hashtbl.add s.table key n;
      push_front s n;
      s.size <- s.size + 1);
  evict_over_cap t s

let find t key =
  if not t.on then Store.find t.store key
  else
    let s = shard_of t key in
    let hot =
      locked s (fun () ->
          match Hashtbl.find_opt s.table key with
          | Some n ->
              s.hot_hits <- s.hot_hits + 1;
              promote s n;
              Some n.n_value
          | None -> None)
    in
    match hot with
    | Some _ as v -> v
    | None -> (
        (* Disk read outside the shard lock: a slow file open must not
           block unrelated keys on the same shard. *)
        match Store.find t.store key with
        | Some v ->
            locked s (fun () ->
                s.disk_hits <- s.disk_hits + 1;
                fill t s key v);
            Some v
        | None ->
            locked s (fun () -> s.misses <- s.misses + 1);
            None)

let add t key value =
  Store.add t.store key value;
  if t.on then
    let s = shard_of t key in
    locked s (fun () -> fill t s key value)

let counters t =
  let per_shard =
    Array.map
      (fun s ->
        locked s (fun () ->
            { s_hot_hits = s.hot_hits;
              s_disk_hits = s.disk_hits;
              s_misses = s.misses;
              s_evictions = s.evictions;
              s_size = s.size }))
      t.shards
  in
  let sum f = Array.fold_left (fun acc sc -> acc + f sc) 0 per_shard in
  { hot_hits = sum (fun sc -> sc.s_hot_hits);
    disk_hits = sum (fun sc -> sc.s_disk_hits);
    misses = sum (fun sc -> sc.s_misses);
    evictions = sum (fun sc -> sc.s_evictions);
    size = sum (fun sc -> sc.s_size);
    capacity = t.per_shard_cap * Array.length t.shards;
    shard_count = Array.length t.shards;
    per_shard }

let counters_to_json (c : counters) : Json.t =
  Json.Obj
    [ ("hot_hits", Json.Int c.hot_hits);
      ("disk_hits", Json.Int c.disk_hits);
      ("misses", Json.Int c.misses);
      ("evictions", Json.Int c.evictions);
      ("size", Json.Int c.size);
      ("capacity", Json.Int c.capacity);
      ("shards", Json.Int c.shard_count) ]

let pp_counters fmt (c : counters) =
  Format.fprintf fmt
    "hot_hits=%d disk_hits=%d misses=%d evictions=%d size=%d/%d shards=%d"
    c.hot_hits c.disk_hits c.misses c.evictions c.size c.capacity c.shard_count
