(** A minimal JSON value type with a deterministic compact encoder and a
    strict parser — the one wire/storage format shared by the service
    protocol ({!Service.Protocol}), the [vrm-cli litmus --json] printer
    and the on-disk cache entries ({!Store}).

    Determinism matters more than features here: [to_string] of the same
    value is byte-identical on every run (object fields keep insertion
    order, floats print with ["%.17g"]), so cached payloads can be
    compared and digested as strings. No external JSON library is used —
    the container ships none, and 200 lines of parser beats a stub. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Decode of string
(** Raised by the accessors below on a type mismatch, and carried in the
    [Error] of {!of_string} on malformed input. *)

val to_string : t -> string
(** Compact (no-whitespace) deterministic rendering. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document; trailing garbage is an
    error. Numbers with [.], [e] or [E] parse as [Float], others as
    [Int]. *)

val member : string -> t -> t
(** Field of an object, [Null] if absent; raises {!Decode} on non-objects. *)

val to_int : t -> int
val to_bool : t -> bool
val to_str : t -> string
val to_float : t -> float
(** [to_float] accepts both [Int] and [Float]. *)

val to_list : t -> t list
