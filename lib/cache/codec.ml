(** JSON codecs for verification results. Round-trip exactness for
    behavior sets is the load-bearing property: decode (encode b) must
    rebuild the same outcome set, element for element. *)

open Memmodel

let fail msg = raise (Json.Decode msg)

(* ------------------------------------------------------------------ *)
(* Behaviors                                                           *)
(* ------------------------------------------------------------------ *)

let status_to_json (s : Behavior.status) : Json.t =
  Json.String
    (match s with
    | Behavior.Normal -> "normal"
    | Behavior.Panicked -> "panicked"
    | Behavior.Fuel_exhausted -> "fuel-exhausted")

let status_of_json (j : Json.t) : Behavior.status =
  match Json.to_str j with
  | "normal" -> Behavior.Normal
  | "panicked" -> Behavior.Panicked
  | "fuel-exhausted" -> Behavior.Fuel_exhausted
  | s -> fail ("unknown status " ^ s)

let observable_to_json (o : Prog.observable) : Json.t =
  match o with
  | Prog.Obs_reg (tid, r) ->
      Json.Obj [ ("tid", Json.Int tid); ("reg", Json.String (Reg.name r)) ]
  | Prog.Obs_loc l ->
      Json.Obj
        [ ("base", Json.String (Loc.base l)); ("index", Json.Int (Loc.index l)) ]

let observable_of_json (j : Json.t) : Prog.observable =
  match Json.member "reg" j with
  | Json.Null ->
      Prog.Obs_loc
        (Loc.v
           ~index:(Json.to_int (Json.member "index" j))
           (Json.to_str (Json.member "base" j)))
  | reg -> Prog.Obs_reg (Json.to_int (Json.member "tid" j), Reg.v (Json.to_str reg))

let outcome_to_json (o : Behavior.outcome) : Json.t =
  Json.Obj
    [ ("status", status_to_json o.Behavior.status);
      ( "values",
        Json.List
          (List.map
             (fun (obs, v) ->
               Json.Obj
                 [ ("obs", observable_to_json obs); ("value", Json.Int v) ])
             o.Behavior.values) ) ]

let outcome_of_json (j : Json.t) : Behavior.outcome =
  Behavior.outcome
    ~status:(status_of_json (Json.member "status" j))
    (List.map
       (fun vj ->
         ( observable_of_json (Json.member "obs" vj),
           Json.to_int (Json.member "value" vj) ))
       (Json.to_list (Json.member "values" j)))

let behaviors_to_json (b : Behavior.t) : Json.t =
  Json.List (List.map outcome_to_json (Behavior.elements b))

let behaviors_of_json (j : Json.t) : Behavior.t =
  List.fold_left
    (fun acc oj -> Behavior.add (outcome_of_json oj) acc)
    Behavior.empty (Json.to_list j)

(* ------------------------------------------------------------------ *)
(* Engine statistics                                                   *)
(* ------------------------------------------------------------------ *)

let stats_to_json (s : Engine.stats) : Json.t =
  Json.Obj
    [ ("visited", Json.Int s.Engine.visited);
      ("dedup_hits", Json.Int s.Engine.dedup_hits);
      ("transitions", Json.Int s.Engine.transitions);
      ("max_depth", Json.Int s.Engine.max_depth);
      ("outcomes", Json.Int s.Engine.outcomes);
      ("por_pruned", Json.Int s.Engine.por_pruned);
      ("tasks_spawned", Json.Int s.Engine.tasks_spawned);
      ("tasks_stolen", Json.Int s.Engine.tasks_stolen);
      ("shared_hits", Json.Int s.Engine.shared_hits);
      ("cert_calls", Json.Int s.Engine.cert_calls);
      ("cert_hits", Json.Int s.Engine.cert_hits);
      ("sym_groups", Json.Int s.Engine.sym_groups);
      ("sym_collapsed", Json.Int s.Engine.sym_collapsed);
      ("seen_stripes", Json.Int s.Engine.seen_stripes);
      ("stripe_occupancy", Json.Int s.Engine.stripe_occupancy);
      ("lock_waits", Json.Int s.Engine.lock_waits);
      ("minor_words", Json.Int s.Engine.minor_words);
      ("wall_s", Json.Float s.Engine.wall_s);
      ("jobs", Json.Int s.Engine.jobs);
      ("budget_hit", Json.Bool s.Engine.budget_hit) ]

let stats_of_json (j : Json.t) : Engine.stats =
  { Engine.visited = Json.to_int (Json.member "visited" j);
    dedup_hits = Json.to_int (Json.member "dedup_hits" j);
    transitions = Json.to_int (Json.member "transitions" j);
    max_depth = Json.to_int (Json.member "max_depth" j);
    outcomes = Json.to_int (Json.member "outcomes" j);
    por_pruned = Json.to_int (Json.member "por_pruned" j);
    (* vrm-engine/5 and /6 fields: each engine-version bump invalidated
       every older cache entry, so the strict decoder never sees stats
       JSON without them. *)
    tasks_spawned = Json.to_int (Json.member "tasks_spawned" j);
    tasks_stolen = Json.to_int (Json.member "tasks_stolen" j);
    shared_hits = Json.to_int (Json.member "shared_hits" j);
    cert_calls = Json.to_int (Json.member "cert_calls" j);
    cert_hits = Json.to_int (Json.member "cert_hits" j);
    sym_groups = Json.to_int (Json.member "sym_groups" j);
    sym_collapsed = Json.to_int (Json.member "sym_collapsed" j);
    seen_stripes = Json.to_int (Json.member "seen_stripes" j);
    stripe_occupancy = Json.to_int (Json.member "stripe_occupancy" j);
    lock_waits = Json.to_int (Json.member "lock_waits" j);
    minor_words = Json.to_int (Json.member "minor_words" j);
    wall_s = Json.to_float (Json.member "wall_s" j);
    jobs = Json.to_int (Json.member "jobs" j);
    budget_hit = Json.to_bool (Json.member "budget_hit" j) }

(* ------------------------------------------------------------------ *)
(* Litmus results                                                      *)
(* ------------------------------------------------------------------ *)

type litmus_summary = {
  l_name : string;
  l_description : string;
  l_prog_digest : string;
  l_sc : Behavior.t;
  l_rm : Behavior.t;
  l_rm_only : Behavior.t;
  l_sc_sat : bool;
  l_rm_sat : bool;
  l_sc_panic : bool;
  l_rm_panic : bool;
  l_as_expected : bool;
  l_sc_stats : Engine.stats;
  l_rm_stats : Engine.stats;
}

let litmus_summary (r : Litmus.result) : litmus_summary =
  { l_name = r.Litmus.test.Litmus.prog.Prog.name;
    l_description = r.Litmus.test.Litmus.description;
    l_prog_digest = Fingerprint.prog r.Litmus.test.Litmus.prog;
    l_sc = r.Litmus.sc;
    l_rm = r.Litmus.rm;
    l_rm_only = r.Litmus.rm_only;
    l_sc_sat = r.Litmus.sc_sat;
    l_rm_sat = r.Litmus.rm_sat;
    l_sc_panic = r.Litmus.sc_panic;
    l_rm_panic = r.Litmus.rm_panic;
    l_as_expected = r.Litmus.as_expected;
    l_sc_stats = r.Litmus.sc_stats;
    l_rm_stats = r.Litmus.rm_stats }

let litmus_to_json (s : litmus_summary) : Json.t =
  Json.Obj
    [ ("kind", Json.String "litmus");
      ("name", Json.String s.l_name);
      ("description", Json.String s.l_description);
      ("prog_digest", Json.String s.l_prog_digest);
      ("sc_digest", Json.String (Fingerprint.behaviors s.l_sc));
      ("rm_digest", Json.String (Fingerprint.behaviors s.l_rm));
      ("sc", behaviors_to_json s.l_sc);
      ("rm", behaviors_to_json s.l_rm);
      ("rm_only", behaviors_to_json s.l_rm_only);
      ("sc_sat", Json.Bool s.l_sc_sat);
      ("rm_sat", Json.Bool s.l_rm_sat);
      ("sc_panic", Json.Bool s.l_sc_panic);
      ("rm_panic", Json.Bool s.l_rm_panic);
      ("as_expected", Json.Bool s.l_as_expected);
      ("sc_stats", stats_to_json s.l_sc_stats);
      ("rm_stats", stats_to_json s.l_rm_stats) ]

let litmus_of_json (j : Json.t) : litmus_summary =
  if Json.member "kind" j <> Json.String "litmus" then
    fail "expected a litmus result";
  let s =
    { l_name = Json.to_str (Json.member "name" j);
      l_description = Json.to_str (Json.member "description" j);
      l_prog_digest = Json.to_str (Json.member "prog_digest" j);
      l_sc = behaviors_of_json (Json.member "sc" j);
      l_rm = behaviors_of_json (Json.member "rm" j);
      l_rm_only = behaviors_of_json (Json.member "rm_only" j);
      l_sc_sat = Json.to_bool (Json.member "sc_sat" j);
      l_rm_sat = Json.to_bool (Json.member "rm_sat" j);
      l_sc_panic = Json.to_bool (Json.member "sc_panic" j);
      l_rm_panic = Json.to_bool (Json.member "rm_panic" j);
      l_as_expected = Json.to_bool (Json.member "as_expected" j);
      l_sc_stats = stats_of_json (Json.member "sc_stats" j);
      l_rm_stats = stats_of_json (Json.member "rm_stats" j) }
  in
  (* the embedded digests double as an integrity check on the sets *)
  if
    Json.to_str (Json.member "sc_digest" j) <> Fingerprint.behaviors s.l_sc
    || Json.to_str (Json.member "rm_digest" j) <> Fingerprint.behaviors s.l_rm
  then fail "behavior-set digest mismatch";
  s

(* ------------------------------------------------------------------ *)
(* Refinement verdicts                                                 *)
(* ------------------------------------------------------------------ *)

type refine_summary = {
  r_name : string;
  r_prog_digest : string;
  r_holds : bool;
  r_sc : Behavior.t;
  r_rm : Behavior.t;
  r_rm_only : Behavior.t;
  r_sc_panics : bool;
  r_rm_panics : bool;
  r_bounded : bool;
  r_violation : string option;
  r_sc_stats : Engine.stats;
  r_rm_stats : Engine.stats;
}

let refine_summary ~name (prog : Prog.t) (v : Vrm.Refinement.verdict) :
    refine_summary =
  { r_name = name;
    r_prog_digest = Fingerprint.prog prog;
    r_holds = v.Vrm.Refinement.holds;
    r_sc = v.Vrm.Refinement.sc;
    r_rm = v.Vrm.Refinement.rm;
    r_rm_only = v.Vrm.Refinement.rm_only;
    r_sc_panics = v.Vrm.Refinement.sc_panics;
    r_rm_panics = v.Vrm.Refinement.rm_panics;
    r_bounded = v.Vrm.Refinement.bounded;
    r_violation =
      Option.map
        (fun (o, steps) ->
          Format.asprintf "%a via %a" Behavior.pp_outcome o
            Promising.pp_schedule steps)
        (Vrm.Refinement.first_violation v);
    r_sc_stats = v.Vrm.Refinement.sc_stats;
    r_rm_stats = v.Vrm.Refinement.rm_stats }

let refine_to_json (s : refine_summary) : Json.t =
  Json.Obj
    [ ("kind", Json.String "refine");
      ("name", Json.String s.r_name);
      ("prog_digest", Json.String s.r_prog_digest);
      ("holds", Json.Bool s.r_holds);
      ("sc_digest", Json.String (Fingerprint.behaviors s.r_sc));
      ("rm_digest", Json.String (Fingerprint.behaviors s.r_rm));
      ("sc", behaviors_to_json s.r_sc);
      ("rm", behaviors_to_json s.r_rm);
      ("rm_only", behaviors_to_json s.r_rm_only);
      ("sc_panics", Json.Bool s.r_sc_panics);
      ("rm_panics", Json.Bool s.r_rm_panics);
      ("bounded", Json.Bool s.r_bounded);
      ( "violation",
        match s.r_violation with
        | None -> Json.Null
        | Some w -> Json.String w );
      ("sc_stats", stats_to_json s.r_sc_stats);
      ("rm_stats", stats_to_json s.r_rm_stats) ]

let static_refine_summary ~name (prog : Prog.t) : refine_summary =
  { r_name = name;
    r_prog_digest = Fingerprint.prog prog;
    r_holds = true;
    r_sc = Behavior.empty;
    r_rm = Behavior.empty;
    r_rm_only = Behavior.empty;
    r_sc_panics = false;
    r_rm_panics = false;
    r_bounded = false;
    r_violation = None;
    r_sc_stats = Engine.zero_stats;
    r_rm_stats = Engine.zero_stats }

let refine_to_json_static (s : refine_summary) : Json.t =
  match refine_to_json s with
  | Json.Obj fields -> Json.Obj (fields @ [ ("served_by", Json.String "static") ])
  | j -> j

let refine_served_by_static (j : Json.t) : bool =
  Json.member "served_by" j = Json.String "static"

let refine_of_json (j : Json.t) : refine_summary =
  if Json.member "kind" j <> Json.String "refine" then
    fail "expected a refinement result";
  let s =
    { r_name = Json.to_str (Json.member "name" j);
      r_prog_digest = Json.to_str (Json.member "prog_digest" j);
      r_holds = Json.to_bool (Json.member "holds" j);
      r_sc = behaviors_of_json (Json.member "sc" j);
      r_rm = behaviors_of_json (Json.member "rm" j);
      r_rm_only = behaviors_of_json (Json.member "rm_only" j);
      r_sc_panics = Json.to_bool (Json.member "sc_panics" j);
      r_rm_panics = Json.to_bool (Json.member "rm_panics" j);
      r_bounded = Json.to_bool (Json.member "bounded" j);
      r_violation =
        (match Json.member "violation" j with
        | Json.Null -> None
        | w -> Some (Json.to_str w));
      r_sc_stats = stats_of_json (Json.member "sc_stats" j);
      r_rm_stats = stats_of_json (Json.member "rm_stats" j) }
  in
  if
    Json.to_str (Json.member "sc_digest" j) <> Fingerprint.behaviors s.r_sc
    || Json.to_str (Json.member "rm_digest" j) <> Fingerprint.behaviors s.r_rm
  then fail "behavior-set digest mismatch";
  s

(* ------------------------------------------------------------------ *)
(* BMC cross-validation results                                        *)
(* ------------------------------------------------------------------ *)

type bmc_summary = {
  b_name : string;
  b_description : string;
  b_prog_digest : string;
  b_rm : Behavior.t;
  b_sc : Behavior.t;
  b_rm_complete : bool;
  b_sc_complete : bool;
  b_rm_sat : bool;
  b_models : int;
  b_vars : int;
  b_clauses : int;
  b_conflicts : int;
  b_wall_s : float;
}

let bmc_summary (t : Litmus.t) ~(rm : Bmc.result) ~(sc : Bmc.result) :
    bmc_summary =
  { b_name = t.Litmus.prog.Prog.name;
    b_description = t.Litmus.description;
    b_prog_digest = Fingerprint.prog t.Litmus.prog;
    b_rm = rm.Bmc.behaviors;
    b_sc = sc.Bmc.behaviors;
    b_rm_complete = rm.Bmc.complete;
    b_sc_complete = sc.Bmc.complete;
    b_rm_sat = Behavior.satisfiable t.Litmus.exists rm.Bmc.behaviors;
    b_models = rm.Bmc.stats.Bmc.models + sc.Bmc.stats.Bmc.models;
    b_vars = rm.Bmc.stats.Bmc.vars + sc.Bmc.stats.Bmc.vars;
    b_clauses = rm.Bmc.stats.Bmc.clauses + sc.Bmc.stats.Bmc.clauses;
    b_conflicts = rm.Bmc.stats.Bmc.conflicts + sc.Bmc.stats.Bmc.conflicts;
    b_wall_s = rm.Bmc.wall_s +. sc.Bmc.wall_s }

let bmc_to_json (s : bmc_summary) : Json.t =
  Json.Obj
    [ ("kind", Json.String "bmc");
      ("name", Json.String s.b_name);
      ("description", Json.String s.b_description);
      ("prog_digest", Json.String s.b_prog_digest);
      ("rm_digest", Json.String (Fingerprint.behaviors s.b_rm));
      ("sc_digest", Json.String (Fingerprint.behaviors s.b_sc));
      ("rm", behaviors_to_json s.b_rm);
      ("sc", behaviors_to_json s.b_sc);
      ("rm_complete", Json.Bool s.b_rm_complete);
      ("sc_complete", Json.Bool s.b_sc_complete);
      ("rm_sat", Json.Bool s.b_rm_sat);
      ("models", Json.Int s.b_models);
      ("vars", Json.Int s.b_vars);
      ("clauses", Json.Int s.b_clauses);
      ("conflicts", Json.Int s.b_conflicts);
      ("wall_s", Json.Float s.b_wall_s) ]

let bmc_of_json (j : Json.t) : bmc_summary =
  if Json.member "kind" j <> Json.String "bmc" then
    fail "expected a bmc result";
  let s =
    { b_name = Json.to_str (Json.member "name" j);
      b_description = Json.to_str (Json.member "description" j);
      b_prog_digest = Json.to_str (Json.member "prog_digest" j);
      b_rm = behaviors_of_json (Json.member "rm" j);
      b_sc = behaviors_of_json (Json.member "sc" j);
      b_rm_complete = Json.to_bool (Json.member "rm_complete" j);
      b_sc_complete = Json.to_bool (Json.member "sc_complete" j);
      b_rm_sat = Json.to_bool (Json.member "rm_sat" j);
      b_models = Json.to_int (Json.member "models" j);
      b_vars = Json.to_int (Json.member "vars" j);
      b_clauses = Json.to_int (Json.member "clauses" j);
      b_conflicts = Json.to_int (Json.member "conflicts" j);
      b_wall_s = Json.to_float (Json.member "wall_s" j) }
  in
  (* the embedded digests double as an integrity check on the sets *)
  if
    Json.to_str (Json.member "rm_digest" j) <> Fingerprint.behaviors s.b_rm
    || Json.to_str (Json.member "sc_digest" j) <> Fingerprint.behaviors s.b_sc
  then fail "behavior-set digest mismatch";
  s

(* ------------------------------------------------------------------ *)
(* Certificate summaries                                               *)
(* ------------------------------------------------------------------ *)

let certificate_to_json (s : Vrm.Certificate.summary) : Json.t =
  Json.Obj
    [ ("kind", Json.String "certificate");
      ("linux", Json.String s.Vrm.Certificate.s_linux);
      ("stage2_levels", Json.Int s.Vrm.Certificate.s_stage2_levels);
      ( "programs",
        Json.List
          (List.map
             (fun (p : Vrm.Certificate.program_summary) ->
               Json.Obj
                 [ ("name", Json.String p.Vrm.Certificate.ps_name);
                   ("prog_digest", Json.String p.Vrm.Certificate.ps_prog_digest);
                   ("drf", Json.Bool p.Vrm.Certificate.ps_drf);
                   ("barrier", Json.Bool p.Vrm.Certificate.ps_barrier);
                   ("refine", Json.Bool p.Vrm.Certificate.ps_refine);
                   ("as_expected", Json.Bool p.Vrm.Certificate.ps_as_expected) ])
             s.Vrm.Certificate.s_programs) );
      ("write_once", Json.Bool s.Vrm.Certificate.s_write_once);
      ("tlbi", Json.Bool s.Vrm.Certificate.s_tlbi);
      ("transactional", Json.Bool s.Vrm.Certificate.s_transactional);
      ("example5_rejected", Json.Bool s.Vrm.Certificate.s_example5_rejected);
      ("isolation", Json.Bool s.Vrm.Certificate.s_isolation);
      ("attacks_denied", Json.Bool s.Vrm.Certificate.s_attacks_denied);
      ("oracle_independent", Json.Bool s.Vrm.Certificate.s_oracle_independent);
      ("theorem4", Json.Bool s.Vrm.Certificate.s_theorem4);
      ("certified", Json.Bool s.Vrm.Certificate.s_certified) ]

let certificate_of_json (j : Json.t) : Vrm.Certificate.summary =
  if Json.member "kind" j <> Json.String "certificate" then
    fail "expected a certificate";
  { Vrm.Certificate.s_linux = Json.to_str (Json.member "linux" j);
    s_stage2_levels = Json.to_int (Json.member "stage2_levels" j);
    s_programs =
      List.map
        (fun pj ->
          { Vrm.Certificate.ps_name = Json.to_str (Json.member "name" pj);
            ps_prog_digest = Json.to_str (Json.member "prog_digest" pj);
            ps_drf = Json.to_bool (Json.member "drf" pj);
            ps_barrier = Json.to_bool (Json.member "barrier" pj);
            ps_refine = Json.to_bool (Json.member "refine" pj);
            ps_as_expected = Json.to_bool (Json.member "as_expected" pj) })
        (Json.to_list (Json.member "programs" j));
    s_write_once = Json.to_bool (Json.member "write_once" j);
    s_tlbi = Json.to_bool (Json.member "tlbi" j);
    s_transactional = Json.to_bool (Json.member "transactional" j);
    s_example5_rejected = Json.to_bool (Json.member "example5_rejected" j);
    s_isolation = Json.to_bool (Json.member "isolation" j);
    s_attacks_denied = Json.to_bool (Json.member "attacks_denied" j);
    s_oracle_independent = Json.to_bool (Json.member "oracle_independent" j);
    s_theorem4 = Json.to_bool (Json.member "theorem4" j);
    s_certified = Json.to_bool (Json.member "certified" j) }
