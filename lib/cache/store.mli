(** Content-addressed verification-result cache.

    A cache key is a digest over everything a result can depend on:
    the program's content digest ({!Memmodel.Fingerprint.prog}), the
    model/job identifier, the engine budgets, and the engine version
    ({!Memmodel.Engine.version}). Because the exploration engine is pure
    and deterministic, a stored result is {e equal} to a recomputed one
    — the determinism argument is spelled out in DESIGN.md. The key
    deliberately excludes the [--jobs] fan-out (parallel search returns
    the same behavior set) and the program/job {e name}.

    Entries live in an in-memory table, optionally backed by an on-disk
    directory (one file per key). The on-disk format is versioned and
    checksummed; a truncated, garbled, or stale-engine-version entry is
    treated as a {e miss} — the caller recomputes, the cache never
    crashes and never serves a corrupt payload.

    All operations are thread- and domain-safe (one internal mutex). *)

type t

val make_key :
  engine_version:string ->
  model:string ->
  budgets:string ->
  prog_digest:string ->
  string
(** The cache keying rule. [model] identifies the job kind (e.g.
    ["litmus"], ["refine"], ["certify"]); [budgets] is a canonical
    rendering of every exploration bound (e.g.
    {!Memmodel.Fingerprint.promising_config} plus the SC fuel). *)

val create : ?dir:string -> engine_version:string -> unit -> t
(** [dir] enables the on-disk backing store (created if missing). Without
    it the cache is memory-only. *)

val find : t -> string -> Json.t option
(** Memory first, then disk (a disk hit is promoted to memory). [None]
    counts as a miss; corrupt disk entries additionally bump the
    [corrupt] counter. *)

val add : t -> string -> Json.t -> unit
(** Insert into memory and (if backed) write the disk entry atomically
    (temp file + rename). Disk write failures are swallowed: the cache
    degrades to memory-only rather than failing the job. *)

val drop_memory : t -> unit
(** Forget the in-memory table (counters survive) — forces subsequent
    [find]s through the disk path; used by tests and the cold/warm bench. *)

type counters = {
  hits : int;  (** memory + disk hits *)
  misses : int;
  disk_hits : int;  (** subset of [hits] served from disk *)
  stores : int;
  corrupt : int;  (** disk entries rejected as truncated/garbled/stale *)
  entries : int;  (** current in-memory population *)
}

val counters : t -> counters
val pp_counters : Format.formatter -> counters -> unit
