(** Content-addressed verification-result cache — the disk tier.

    A cache key is a digest over everything a result can depend on:
    the program's content digest ({!Memmodel.Fingerprint.prog}), the
    model/job identifier, the engine budgets, and the engine version
    ({!Memmodel.Engine.version}). Because the exploration engine is pure
    and deterministic, a stored result is {e equal} to a recomputed one
    — the determinism argument is spelled out in DESIGN.md. The key
    deliberately excludes the [--jobs] fan-out (parallel search returns
    the same behavior set) and the program/job {e name}.

    This module is purely the persistent tier: every [find] opens the
    entry file, re-derives its checksum and re-parses the payload. The
    in-memory tier is {!Hot}, a sharded size-bounded LRU of decoded
    payloads layered in front of a store. The on-disk format is
    versioned and checksummed; a truncated, garbled, or
    stale-engine-version entry is treated as a {e miss} — the caller
    recomputes, the cache never crashes and never serves a corrupt
    payload.

    All operations are thread- and domain-safe (one internal mutex). *)

type t

val make_key :
  engine_version:string ->
  model:string ->
  budgets:string ->
  prog_digest:string ->
  string
(** The cache keying rule. [model] identifies the job kind (e.g.
    ["litmus"], ["refine"], ["certify"]); [budgets] is a canonical
    rendering of every exploration bound (e.g.
    {!Memmodel.Fingerprint.promising_config} plus the SC fuel). *)

val create : ?dir:string -> engine_version:string -> unit -> t
(** [dir] names the backing directory (created if missing). Without it
    the store holds nothing: every [find] misses and every [add] is a
    no-op — useful as the cache-off configuration. *)

val find : t -> string -> Json.t option
(** Read, checksum, and parse the entry from disk. [None] counts as a
    miss; corrupt disk entries additionally bump the [corrupt] counter.
    A hit refreshes the entry's mtime, so {!gc}'s LRU policy sees use,
    not just age. *)

val add : t -> string -> Json.t -> unit
(** Write the disk entry atomically (temp file + rename). Disk write
    failures are swallowed: the cache degrades to recompute-always
    rather than failing the job. *)

type gc_report = {
  examined : int;  (** entries present when the sweep started *)
  deleted : int;
  kept : int;
}

val gc : t -> max_entries:int -> gc_report
(** Delete least-recently-used entries (by file mtime, oldest first,
    name-ordered on ties) until at most [max_entries] remain. Backs the
    [vrm-cli cache-gc] verb. *)

type counters = {
  hits : int;  (** disk hits *)
  misses : int;
  stores : int;
  corrupt : int;  (** disk entries rejected as truncated/garbled/stale *)
  entries : int;  (** current on-disk population *)
}

val counters : t -> counters
val pp_counters : Format.formatter -> counters -> unit
