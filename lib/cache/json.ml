(** Minimal deterministic JSON. See the interface for the contract. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Decode of string

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec encode buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        (* keep a float marker so it round-trips as Float *)
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          encode buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          encode buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  encode buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: strict recursive descent                                   *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Decode (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then (
    st.pos <- st.pos + String.length word;
    v)
  else fail st (Printf.sprintf "expected %s" word)

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let s = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ s) with
  | Some n -> n
  | None -> fail st "bad \\u escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            st.pos <- st.pos + 1;
            let n = parse_hex4 st in
            (* we only emit \u for control chars; decode the low byte *)
            if n < 0x100 then Buffer.add_char buf (Char.chr n)
            else fail st "unsupported \\u escape above 0xff";
            go ()
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let s = String.sub st.src start (st.pos - start) in
  let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s in
  if floaty then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail st "bad number"
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then (
        st.pos <- st.pos + 1;
        Obj [])
      else
        let rec fields acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then (
        st.pos <- st.pos + 1;
        List [])
      else
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elems [])
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected '%c'" c)

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Decode msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> Null)
  | _ -> raise (Decode (Printf.sprintf "member %S of non-object" k))

let to_int = function
  | Int n -> n
  | _ -> raise (Decode "expected int")

let to_bool = function
  | Bool b -> b
  | _ -> raise (Decode "expected bool")

let to_str = function
  | String s -> s
  | _ -> raise (Decode "expected string")

let to_float = function
  | Float f -> f
  | Int n -> float_of_int n
  | _ -> raise (Decode "expected number")

let to_list = function
  | List l -> l
  | _ -> raise (Decode "expected list")
