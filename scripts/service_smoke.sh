#!/bin/sh
# vrmd end-to-end smoke test.
#
# Starts the daemon on a private socket with a private cache directory
# and a job journal, submits a corpus subset on both lanes, asserts
# parity with direct in-process runs (--verify recomputes each job
# locally and compares content digests), checks that a resubmission is
# served from the cache, prunes the disk tier with cache-gc, and
# exercises graceful shutdown.
set -eu

CLI="dune exec --no-build bin/vrm_cli.exe --"
WORK=$(mktemp -d "${TMPDIR:-/tmp}/vrmd-smoke.XXXXXX")
SOCK="$WORK/vrmd.sock"
CACHE="$WORK/cache"
LOG="$WORK/serve.log"

cleanup() {
    # best-effort: ask the daemon to stop if it is still around
    $CLI shutdown --socket "$SOCK" >/dev/null 2>&1 || true
    wait "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

$CLI serve --socket "$SOCK" --workers 2 --cache-dir "$CACHE" \
    --journal "$WORK/journal.jsonl" >"$LOG" 2>&1 &
SERVER_PID=$!

# wait for the socket
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FAIL: server did not come up" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done

echo "== submit a corpus subset, verifying parity against direct runs"
$CLI submit litmus mp-plain     --socket "$SOCK" --verify
$CLI submit litmus sb-plain     --socket "$SOCK" --verify
$CLI submit refine gen_vmid     --socket "$SOCK" --verify
$CLI submit refine mcs-counter  --socket "$SOCK" --verify
$CLI submit refine sym-stress-4 --socket "$SOCK" --verify

echo "== resubmission must be served from the cache"
OUT=$($CLI submit litmus mp-plain --socket "$SOCK")
echo "$OUT"
case "$OUT" in
*cached*) ;;
*)
    echo "FAIL: resubmission was not a cache hit" >&2
    exit 1
    ;;
esac

# --no-sym flips the sym bit in the cache key: the first no-sym submit
# of an already-cached job must re-explore (a cache hit here would mean
# sym and no-sym submissions coalesced), and only its own resubmission
# may be served from the cache. --verify keeps the digests honest: both
# arms must match the locally recomputed behavior sets.
echo "== --no-sym occupies a distinct cache entry"
OUT=$($CLI submit refine sym-stress-4 --socket "$SOCK" --no-sym --verify)
echo "$OUT"
case "$OUT" in
*cached*)
    echo "FAIL: --no-sym submission was served from the sym cache entry" >&2
    exit 1
    ;;
esac
OUT=$($CLI submit refine sym-stress-4 --socket "$SOCK" --no-sym)
echo "$OUT"
case "$OUT" in
*cached*) ;;
*)
    echo "FAIL: --no-sym resubmission was not a cache hit" >&2
    exit 1
    ;;
esac

# The bulk lane must produce the same payloads as the interactive lane
# (the lane only affects scheduling, never results): a bulk submit of an
# already-cached job is a cache hit, and a bulk submit of a fresh job
# passes --verify against a direct run.
echo "== bulk lane: same cache, same digests"
OUT=$($CLI submit litmus mp-plain --socket "$SOCK" --bulk)
echo "$OUT"
case "$OUT" in
*cached*) ;;
*)
    echo "FAIL: bulk resubmission did not hit the interactive-lane cache entry" >&2
    exit 1
    ;;
esac
$CLI submit litmus lb-data --socket "$SOCK" --bulk --verify

echo "== service counters"
$CLI status --socket "$SOCK"

echo "== graceful shutdown"
$CLI shutdown --socket "$SOCK"
wait "$SERVER_PID"
if [ -S "$SOCK" ]; then
    echo "FAIL: socket file survived shutdown" >&2
    exit 1
fi

# entries persisted for the next daemon
N=$(ls "$CACHE" | wc -l)
if [ "$N" -lt 3 ]; then
    echo "FAIL: expected persisted cache entries, found $N" >&2
    exit 1
fi

# cache-gc prunes the disk tier offline, LRU-by-mtime, down to the
# requested bound; a second run under the same bound is a no-op.
echo "== cache-gc prunes the persisted tier to --max-entries"
$CLI cache-gc --cache-dir "$CACHE" --max-entries 3
M=$(ls "$CACHE" | wc -l)
if [ "$M" -ne 3 ]; then
    echo "FAIL: cache-gc left $M entries, expected 3" >&2
    exit 1
fi
OUT=$($CLI cache-gc --cache-dir "$CACHE" --max-entries 3)
echo "$OUT"
case "$OUT" in
*"0 deleted"*) ;;
*)
    echo "FAIL: second cache-gc under the same bound was not a no-op" >&2
    exit 1
    ;;
esac

echo "service smoke: OK ($N cache entries persisted, gc kept 3)"
