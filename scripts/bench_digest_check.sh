#!/bin/sh
# Regenerate BENCH_engine.json via `make bench-smoke` and fail if any
# refinement-sweep behavior digest differs from the digests committed in
# the repository, if the thread-symmetry section lost digest parity or
# its N=4 state-cut gate, or if the frontier scheduler failed its
# scaling gate.
# scaling_ok is three-valued as of vrm-bench-engine/4: "true" (jobs=4
# speedup >= 1.3x on a >=4-domain machine), "false" (it was not), or
# "skipped" (machine has <4 domains, so the comparison was never run —
# recorded distinctly from "true" so a skipped gate cannot masquerade as
# a passed one). Set VRM_BENCH_ALLOW_NO_SCALING=1 to downgrade a scaling
# failure to a warning (digest drift always fails). Digests are
# deterministic functions of the behavior sets; wall-clock numbers are
# machine noise and are never compared.
set -eu

cd "$(dirname "$0")/.."

committed=$(mktemp)
trap 'rm -f "$committed"' EXIT
git show HEAD:BENCH_engine.json > "$committed"

make bench-smoke

python3 - "$committed" BENCH_engine.json <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    old = {s["label"]: s["digest"] for s in json.load(f)["refinement_sweep"]}
with open(sys.argv[2]) as f:
    fresh = json.load(f)
new = {s["label"]: s["digest"] for s in fresh["refinement_sweep"]}

bad = False
for label, digest in new.items():
    ref = old.get(label)
    if ref is None:
        print(f"NEW SWEEP (no committed digest): {label}")
        continue
    if digest != ref:
        bad = True
        print(f"MISMATCH {label}: fresh {digest}, committed {ref}")
    else:
        print(f"ok       {label}: {digest}")
for label in sorted(set(old) - set(new)):
    bad = True
    print(f"MISSING SWEEP: {label}")

if bad:
    sys.exit("bench digests differ from the committed BENCH_engine.json")
print("all sweep digests match the committed BENCH_engine.json")

# Thread-symmetry gate (vrm-bench-engine/5): every sym-stress row must
# be digest-equal sym-on vs sym-off, the ownership checker must agree,
# and at N=4 every model must cut visited states by at least 5x. These
# are determinism properties of the orbit canonicalization, not timing,
# so they are hard failures on any machine.
sym = fresh.get("symmetry")
if sym is None:
    sys.exit("BENCH_engine.json has no symmetry section "
             "(expected schema vrm-bench-engine/5 or later)")
unequal = [f"{r['name']}/{r['model']}" for r in sym["rows"]
           if not r["digest_equal"]]
if unequal:
    sys.exit("symmetry reduction changed behavior sets: "
             + ", ".join(unequal))
if not sym["pushpull_equal"]:
    sys.exit("symmetry reduction changed a pushpull verdict "
             "on the sym-stress family")
n4 = [r for r in sym["rows"] if r["name"] == "sym-stress-4"]
if not n4:
    sys.exit("symmetry section has no sym-stress-4 rows")
weak = [f"{r['model']} {r['ratio']:.2f}x" for r in n4 if r["ratio"] < 5.0]
if weak:
    sys.exit("symmetry state cut below 5x at N=4: " + ", ".join(weak))
print(f"symmetry: {len(sym['rows'])} rows digest-equal; "
      f"N=4 min cut {min(r['ratio'] for r in n4):.2f}x")

speedup = fresh.get("speedup_jobs4_vs_seq")
domains = fresh.get("domains")
print(f"scaling: jobs=4 speedup {speedup:.2f}x on {domains} domains")
# vrm-bench-engine/4 records scaling_ok as "true" / "false" / "skipped";
# schema /3 and earlier used a boolean (vacuously true under 4 domains).
verdict = fresh.get("scaling_ok", "true")
if verdict == "skipped" or verdict is True and domains is not None and domains < 4:
    print(f"scaling: skipped ({domains} hardware domains < 4; not a pass)")
elif verdict in ("false", False):
    msg = (f"scaling_ok:false — jobs=4 speedup {speedup:.2f}x < 1.30x "
           f"on a {domains}-domain machine")
    if os.environ.get("VRM_BENCH_ALLOW_NO_SCALING"):
        print(f"WARNING (overridden by VRM_BENCH_ALLOW_NO_SCALING): {msg}")
    else:
        sys.exit(msg)
else:
    print("scaling: ok")
EOF
