#!/bin/sh
# Two modes:
#
#   bench_digest_check.sh                    (default, engine mode)
#   bench_digest_check.sh --service FILE     (service mode)
#
# Service mode validates a BENCH_service.json produced by
# `vrm-cli bench-serve --json FILE`: schema shape, per-lane p50/p90/p99
# presence and ordering, digest parity between the hot-tier-on serving
# path and direct in-process runs, zero unexplained sheds (interactive
# submissions must never be shed by bulk load), the warm-path speedup
# gate (hot tier >= 5x faster than the disk tier at p50), and the
# bounded-interactive-tail gate. Latency magnitudes are machine noise
# and are never compared; only invariants of the serving design are.
#
# Engine mode: regenerate BENCH_engine.json via `make bench-smoke` and fail if any
# refinement-sweep behavior digest differs from the digests committed in
# the repository, if the thread-symmetry section lost digest parity or
# its N=4 state-cut gate, or if the frontier scheduler failed its
# scaling gate.
# scaling_ok is three-valued as of vrm-bench-engine/4: "true" (jobs=4
# speedup >= 1.3x on a >=4-domain machine), "false" (it was not), or
# "skipped" (machine has <4 domains, so the comparison was never run —
# recorded distinctly from "true" so a skipped gate cannot masquerade as
# a passed one). Set VRM_BENCH_ALLOW_NO_SCALING=1 to downgrade a scaling
# failure to a warning (digest drift always fails). Digests are
# deterministic functions of the behavior sets; wall-clock numbers are
# machine noise and are never compared.
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "--service" ]; then
    SERVICE_JSON="${2:?usage: bench_digest_check.sh --service FILE}"
    python3 - "$SERVICE_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    b = json.load(f)

def die(msg):
    sys.exit(f"BENCH_service.json: {msg}")

if b.get("schema") != "vrm-bench-service":
    die(f"unexpected schema {b.get('schema')!r}")

for lane in ("interactive", "bulk"):
    l = b.get("lanes", {}).get(lane)
    if l is None:
        die(f"missing lane section {lane!r}")
    for k in ("requests", "completed", "shed", "errors",
              "p50_ms", "p90_ms", "p99_ms"):
        if k not in l:
            die(f"lanes.{lane} missing {k!r}")
    if not (l["p50_ms"] <= l["p90_ms"] <= l["p99_ms"]):
        die(f"lanes.{lane} percentiles not monotone: "
            f"{l['p50_ms']}/{l['p90_ms']}/{l['p99_ms']}")
    if l["errors"] != 0:
        die(f"lanes.{lane} had {l['errors']} protocol/transport errors")
    acct = l["completed"] + l["shed"] + l["errors"]
    if acct != l["requests"]:
        die(f"lanes.{lane} accounting: {acct} outcomes "
            f"for {l['requests']} requests")

for k in ("throughput_rps", "hot_hit_ratio", "shed_total",
          "unexplained_sheds", "warm_path"):
    if k not in b:
        die(f"missing top-level key {k!r}")

if not b.get("digest_parity"):
    die("digest parity failed: served payloads differ from "
        "direct in-process runs")
if b.get("parity_checked", 0) < 1:
    die("digest parity was never actually checked")
if b["unexplained_sheds"] != 0:
    die(f"{b['unexplained_sheds']} interactive submissions were shed "
        "(the reserved-worker + strict-priority design must keep the "
        "interactive lane admissible under bulk load)")
wp = b["warm_path"]
if wp["speedup"] < 5.0:
    die(f"hot-tier warm path only {wp['speedup']:.1f}x faster than the "
        f"disk tier at p50 (gate: >= 5x); hot {wp['hot_p50_us']}us vs "
        f"disk {wp['disk_p50_us']}us")
if not b.get("interactive_bounded"):
    die("interactive p99 was not bounded by the bulk p99 while the "
        "bulk lane was saturated")

i, u = b["lanes"]["interactive"], b["lanes"]["bulk"]
print(f"service bench ok: {b['requests']} requests, "
      f"{b['throughput_rps']:.0f} req/s, "
      f"interactive p50/p99 {i['p50_ms']:.2f}/{i['p99_ms']:.2f} ms "
      f"({i['shed']} shed), "
      f"bulk p50/p99 {u['p50_ms']:.2f}/{u['p99_ms']:.2f} ms "
      f"({u['shed']} shed), "
      f"hot hit ratio {b['hot_hit_ratio']:.2f}, "
      f"warm path {wp['speedup']:.0f}x over disk, digest parity ok")
EOF
    exit 0
fi

committed=$(mktemp)
trap 'rm -f "$committed"' EXIT
git show HEAD:BENCH_engine.json > "$committed"

make bench-smoke

python3 - "$committed" BENCH_engine.json <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    old = {s["label"]: s["digest"] for s in json.load(f)["refinement_sweep"]}
with open(sys.argv[2]) as f:
    fresh = json.load(f)
new = {s["label"]: s["digest"] for s in fresh["refinement_sweep"]}

bad = False
for label, digest in new.items():
    ref = old.get(label)
    if ref is None:
        print(f"NEW SWEEP (no committed digest): {label}")
        continue
    if digest != ref:
        bad = True
        print(f"MISMATCH {label}: fresh {digest}, committed {ref}")
    else:
        print(f"ok       {label}: {digest}")
for label in sorted(set(old) - set(new)):
    bad = True
    print(f"MISSING SWEEP: {label}")

if bad:
    sys.exit("bench digests differ from the committed BENCH_engine.json")
print("all sweep digests match the committed BENCH_engine.json")

# Thread-symmetry gate (vrm-bench-engine/5): every sym-stress row must
# be digest-equal sym-on vs sym-off, the ownership checker must agree,
# and at N=4 every model must cut visited states by at least 5x. These
# are determinism properties of the orbit canonicalization, not timing,
# so they are hard failures on any machine.
sym = fresh.get("symmetry")
if sym is None:
    sys.exit("BENCH_engine.json has no symmetry section "
             "(expected schema vrm-bench-engine/5 or later)")
unequal = [f"{r['name']}/{r['model']}" for r in sym["rows"]
           if not r["digest_equal"]]
if unequal:
    sys.exit("symmetry reduction changed behavior sets: "
             + ", ".join(unequal))
if not sym["pushpull_equal"]:
    sys.exit("symmetry reduction changed a pushpull verdict "
             "on the sym-stress family")
n4 = [r for r in sym["rows"] if r["name"] == "sym-stress-4"]
if not n4:
    sys.exit("symmetry section has no sym-stress-4 rows")
weak = [f"{r['model']} {r['ratio']:.2f}x" for r in n4 if r["ratio"] < 5.0]
if weak:
    sys.exit("symmetry state cut below 5x at N=4: " + ", ".join(weak))
print(f"symmetry: {len(sym['rows'])} rows digest-equal; "
      f"N=4 min cut {min(r['ratio'] for r in n4):.2f}x")

speedup = fresh.get("speedup_jobs4_vs_seq")
domains = fresh.get("domains")
print(f"scaling: jobs=4 speedup {speedup:.2f}x on {domains} domains")
# vrm-bench-engine/4 records scaling_ok as "true" / "false" / "skipped";
# schema /3 and earlier used a boolean (vacuously true under 4 domains).
verdict = fresh.get("scaling_ok", "true")
if verdict == "skipped" or verdict is True and domains is not None and domains < 4:
    print(f"scaling: skipped ({domains} hardware domains < 4; not a pass)")
elif verdict in ("false", False):
    msg = (f"scaling_ok:false — jobs=4 speedup {speedup:.2f}x < 1.30x "
           f"on a {domains}-domain machine")
    if os.environ.get("VRM_BENCH_ALLOW_NO_SCALING"):
        print(f"WARNING (overridden by VRM_BENCH_ALLOW_NO_SCALING): {msg}")
    else:
        sys.exit(msg)
else:
    print("scaling: ok")
EOF
