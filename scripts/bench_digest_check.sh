#!/bin/sh
# Regenerate BENCH_engine.json via `make bench-smoke` and fail if any
# refinement-sweep behavior digest differs from the digests committed in
# the repository. Digests are deterministic functions of the behavior
# sets; wall-clock numbers are machine noise and are never compared.
set -eu

cd "$(dirname "$0")/.."

committed=$(mktemp)
trap 'rm -f "$committed"' EXIT
git show HEAD:BENCH_engine.json > "$committed"

make bench-smoke

python3 - "$committed" BENCH_engine.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    old = {s["label"]: s["digest"] for s in json.load(f)["refinement_sweep"]}
with open(sys.argv[2]) as f:
    new = {s["label"]: s["digest"] for s in json.load(f)["refinement_sweep"]}

bad = False
for label, digest in new.items():
    ref = old.get(label)
    if ref is None:
        print(f"NEW SWEEP (no committed digest): {label}")
        continue
    if digest != ref:
        bad = True
        print(f"MISMATCH {label}: fresh {digest}, committed {ref}")
    else:
        print(f"ok       {label}: {digest}")
for label in sorted(set(old) - set(new)):
    bad = True
    print(f"MISSING SWEEP: {label}")

if bad:
    sys.exit("bench digests differ from the committed BENCH_engine.json")
print("all sweep digests match the committed BENCH_engine.json")
EOF
