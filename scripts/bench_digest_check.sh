#!/bin/sh
# Regenerate BENCH_engine.json via `make bench-smoke` and fail if any
# refinement-sweep behavior digest differs from the digests committed in
# the repository, or if the frontier scheduler failed its scaling gate
# (scaling_ok:false — jobs=4 speedup below 1.3x on a >=4-domain machine;
# vacuously true on smaller machines). Set VRM_BENCH_ALLOW_NO_SCALING=1
# to downgrade a scaling failure to a warning (digest drift always
# fails). Digests are deterministic functions of the behavior sets;
# wall-clock numbers are machine noise and are never compared.
set -eu

cd "$(dirname "$0")/.."

committed=$(mktemp)
trap 'rm -f "$committed"' EXIT
git show HEAD:BENCH_engine.json > "$committed"

make bench-smoke

python3 - "$committed" BENCH_engine.json <<'EOF'
import json, os, sys

with open(sys.argv[1]) as f:
    old = {s["label"]: s["digest"] for s in json.load(f)["refinement_sweep"]}
with open(sys.argv[2]) as f:
    fresh = json.load(f)
new = {s["label"]: s["digest"] for s in fresh["refinement_sweep"]}

bad = False
for label, digest in new.items():
    ref = old.get(label)
    if ref is None:
        print(f"NEW SWEEP (no committed digest): {label}")
        continue
    if digest != ref:
        bad = True
        print(f"MISMATCH {label}: fresh {digest}, committed {ref}")
    else:
        print(f"ok       {label}: {digest}")
for label in sorted(set(old) - set(new)):
    bad = True
    print(f"MISSING SWEEP: {label}")

if bad:
    sys.exit("bench digests differ from the committed BENCH_engine.json")
print("all sweep digests match the committed BENCH_engine.json")

speedup = fresh.get("speedup_jobs4_vs_seq")
domains = fresh.get("domains")
print(f"scaling: jobs=4 speedup {speedup:.2f}x on {domains} domains")
if not fresh.get("scaling_ok", True):
    msg = (f"scaling_ok:false — jobs=4 speedup {speedup:.2f}x < 1.30x "
           f"on a {domains}-domain machine")
    if os.environ.get("VRM_BENCH_ALLOW_NO_SCALING"):
        print(f"WARNING (overridden by VRM_BENCH_ALLOW_NO_SCALING): {msg}")
    else:
        sys.exit(msg)
EOF
