(** The vrm command-line tool.

    - [vrm-cli litmus [NAME]] — run the litmus corpus (or one test) under
      SC and Promising Arm and print the outcome comparison;
    - [vrm-cli certify [--linux V] [--levels N]] — produce the wDRF
      certificate for one verified KVM version, or all of them;
    - [vrm-cli simulate (table3|fig8|fig9)] — regenerate an evaluation
      artifact from the performance model;
    - [vrm-cli scenario] — run the standard whole-system scenario and
      print the security report. *)

open Cmdliner

(* ------------------------------------------------------------------ *)

let litmus_cmd =
  let test_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"print per-test exploration statistics")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"explore with $(docv) parallel domains")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "print one compact JSON result object per line (the same \
             payload the verification service returns)")
  in
  let no_por =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "disable partial-order reduction on both sides (exact \
             search; identical behavior sets, more states visited)")
  in
  let no_sym =
    Arg.(
      value & flag
      & info [ "no-sym" ]
          ~doc:
            "disable thread-symmetry reduction on both sides (identical \
             behavior sets, thread-permuted states no longer collapsed)")
  in
  let no_cert_cache =
    Arg.(
      value & flag
      & info [ "no-cert-cache" ]
          ~doc:
            "disable certification memoization on the Promising side \
             (identical behavior sets, every promise re-certified from \
             scratch)")
  in
  let backend =
    Arg.(
      value
      & opt (enum [ ("explicit", `Explicit); ("bmc", `Bmc); ("both", `Both) ])
          `Explicit
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "deciding engine: $(b,explicit) (the enumerating SC + \
             Promising executors), $(b,bmc) (the SAT-based bounded model \
             checker), or $(b,both) (run both and fail loudly unless the \
             behavior-set digests agree)")
  in
  let suite =
    Arg.(
      value & flag
      & info [ "suite" ]
          ~doc:"also run the classic litmus suite, not just the §2 examples")
  in
  let run test_name stats jobs json no_por no_sym no_cert_cache backend
      suite =
    let corpus =
      Memmodel.Paper_examples.all
      @ (if suite then Memmodel.Litmus_suite.all else [])
    in
    let tests =
      match test_name with
      | None -> corpus
      | Some n ->
          List.filter
            (fun t -> t.Memmodel.Litmus.prog.Memmodel.Prog.name = n)
            corpus
    in
    if tests = [] then (
      Format.eprintf "unknown litmus test %a@."
        (Format.pp_print_option Format.pp_print_string)
        test_name;
      exit 1);
    match backend with
    | `Explicit ->
        let results =
          List.map
            (Memmodel.Litmus.run ~jobs ~por:(not no_por) ~sym:(not no_sym)
               ~cert_cache:(not no_cert_cache))
            tests
        in
        List.iter
          (fun (r : Memmodel.Litmus.result) ->
            if json then
              print_endline
                (Cache.Json.to_string
                   (Cache.Codec.litmus_to_json (Cache.Codec.litmus_summary r)))
            else begin
              Format.printf "%a@." Memmodel.Litmus.pp_result r;
              if stats then
                Format.printf "  SC : %a@.  RM : %a@."
                  Memmodel.Engine.pp_stats r.Memmodel.Litmus.sc_stats
                  Memmodel.Engine.pp_stats r.Memmodel.Litmus.rm_stats;
              Format.printf "@."
            end)
          results;
        if
          List.exists
            (fun (r : Memmodel.Litmus.result) ->
              not r.Memmodel.Litmus.as_expected)
            results
        then exit 1
    | `Bmc ->
        (* Decide each test by SAT alone. The Arm set is the axiomatic
           model's (an over-approximation of Promising), so the
           exists-clause verdict is checked against [expect_rm]. *)
        let failed = ref false in
        List.iter
          (fun (t : Memmodel.Litmus.t) ->
            match Bmc.check ~mode:Bmc.Arm t.Memmodel.Litmus.prog with
            | rm ->
                let sc = Bmc.check ~mode:Bmc.Sc t.Memmodel.Litmus.prog in
                let s = Cache.Codec.bmc_summary t ~rm ~sc in
                if json then
                  print_endline
                    (Cache.Json.to_string (Cache.Codec.bmc_to_json s))
                else begin
                  let ok = s.Cache.Codec.b_rm_sat = t.Memmodel.Litmus.expect_rm in
                  if not ok then failed := true;
                  Format.printf "%-26s sc=%d rm=%d %s%s %s@."
                    s.Cache.Codec.b_name
                    (Memmodel.Behavior.cardinal s.Cache.Codec.b_sc)
                    (Memmodel.Behavior.cardinal s.Cache.Codec.b_rm)
                    (if s.Cache.Codec.b_rm_sat then "reachable"
                     else "unreachable")
                    (if s.Cache.Codec.b_rm_complete then ""
                     else " (bound-limited)")
                    (if ok then "ok" else "UNEXPECTED");
                  if stats then
                    Format.printf
                      "  %d models, %d vars, %d clauses, %d conflicts, \
                       %.3fs@."
                      s.Cache.Codec.b_models s.Cache.Codec.b_vars
                      s.Cache.Codec.b_clauses s.Cache.Codec.b_conflicts
                      s.Cache.Codec.b_wall_s
                end
            | exception Bmc.Unsupported why ->
                Format.printf "%-26s outside the BMC fragment (%s)@."
                  t.Memmodel.Litmus.prog.Memmodel.Prog.name why)
          tests;
        if !failed then exit 1
    | `Both ->
        (* Cross-validation: the SAT backend must land on bit-identical
           behavior sets to the explicit engines deciding the same
           models — Bmc(Sc) vs the SC enumerator, Bmc(Arm) vs the
           enumerating axiomatic checker. Any divergence is a bug in one
           of the two pipelines and fails the run. *)
        let diverged = ref false in
        List.iter
          (fun (t : Memmodel.Litmus.t) ->
            let prog = t.Memmodel.Litmus.prog in
            match Bmc.check ~mode:Bmc.Arm prog with
            | rm ->
                let sc = Bmc.check ~mode:Bmc.Sc prog in
                let d = Memmodel.Fingerprint.behaviors in
                let sc_ref = d (Memmodel.Sc.run prog) in
                let rm_ref = d (Memmodel.Axiomatic.run prog) in
                let sc_bmc = d sc.Bmc.behaviors in
                let rm_bmc = d rm.Bmc.behaviors in
                let ok = sc_ref = sc_bmc && rm_ref = rm_bmc in
                if not ok then diverged := true;
                Format.printf "%-26s sc=%d rm=%d %s@." prog.Memmodel.Prog.name
                  (Memmodel.Behavior.cardinal sc.Bmc.behaviors)
                  (Memmodel.Behavior.cardinal rm.Bmc.behaviors)
                  (if ok then "AGREE" else "DIGESTS DIVERGE");
                if not ok then begin
                  if sc_ref <> sc_bmc then
                    Format.printf
                      "  *** SC: explicit %s vs bmc %s ***@." sc_ref sc_bmc;
                  if rm_ref <> rm_bmc then
                    Format.printf
                      "  *** Arm: explicit %s vs bmc %s ***@." rm_ref rm_bmc
                end
            | exception Bmc.Unsupported why ->
                Format.printf
                  "%-26s outside the BMC fragment (%s); explicit only@."
                  prog.Memmodel.Prog.name why)
          tests;
        if !diverged then begin
          Format.printf
            "@.*** BACKEND DIVERGENCE: the SAT backend and the explicit \
             engines disagree on at least one behavior set ***@.";
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"run the paper's litmus tests under SC and RM")
    Term.(
      const run $ test_name $ stats $ jobs $ json $ no_por $ no_sym
      $ no_cert_cache $ backend $ suite)

(* ------------------------------------------------------------------ *)

let certify_cmd =
  let linux =
    Arg.(value & opt (some string) None & info [ "linux" ] ~docv:"VERSION")
  in
  let levels =
    Arg.(value & opt int 4 & info [ "levels" ] ~docv:"N")
  in
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ]) in
  let run linux levels verbose =
    let versions =
      match linux with
      | None -> Sekvm.Kernel_progs.versions
      | Some l -> [ { Sekvm.Kernel_progs.linux = l; stage2_levels = levels } ]
    in
    let ok = ref true in
    List.iter
      (fun v ->
        let r = Vrm.Certificate.certify v in
        if verbose then Format.printf "%a@.@." Vrm.Certificate.pp_report r
        else
          Format.printf "Linux %-6s %d-level stage-2: %s@."
            v.Sekvm.Kernel_progs.linux v.Sekvm.Kernel_progs.stage2_levels
            (if r.Vrm.Certificate.certified then "CERTIFIED" else "FAILED");
        if not r.Vrm.Certificate.certified then ok := false)
      versions;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "certify" ~doc:"produce the wDRF certificate for KVM versions")
    Term.(const run $ linux $ levels $ verbose)

(* ------------------------------------------------------------------ *)

let simulate_cmd =
  let what =
    Arg.(
      required
      & pos 0 (some (enum [ ("table3", `T3); ("fig8", `F8); ("fig9", `F9) ]))
          None
      & info [] ~docv:"ARTIFACT")
  in
  let run what =
    match what with
    | `T3 ->
        Format.printf "%-12s %-8s %8s %8s %7s %7s@." "bench" "hw" "KVM"
          "SeKVM" "ratio" "paper";
        List.iter
          (fun (r : Perf.Micro.row) ->
            Format.printf "%-12s %-8s %8d %8d %7.2f %7.2f@."
              r.Perf.Micro.bench.Perf.Micro.name r.Perf.Micro.hw_name
              r.Perf.Micro.kvm_cycles r.Perf.Micro.sekvm_cycles
              r.Perf.Micro.overhead
              (Option.value ~default:0.0
                 (Perf.Micro.paper_overhead r.Perf.Micro.bench.Perf.Micro.name
                    r.Perf.Micro.hw_name)))
          (Perf.Micro.table3 ())
    | `F8 ->
        let pts = Perf.App_sim.figure8 () in
        Format.printf "%-10s %-8s %-5s %-6s %10s@." "workload" "hw" "linux"
          "hyp" "norm-perf";
        List.iter
          (fun (p : Perf.App_sim.point) ->
            Format.printf "%-10s %-8s %-5s %-6s %10.3f@."
              p.Perf.App_sim.workload.Perf.Workload.name p.Perf.App_sim.hw_name
              (Perf.App_sim.version_name p.Perf.App_sim.version)
              (match p.Perf.App_sim.hypervisor with
              | Perf.Cost_model.Kvm -> "kvm"
              | Perf.Cost_model.Sekvm -> "sekvm")
              p.Perf.App_sim.normalized_perf)
          pts
    | `F9 ->
        let pts = Perf.Multi_vm.figure9 () in
        Format.printf "%-10s %-6s %4s %10s@." "workload" "hyp" "VMs"
          "norm-perf";
        List.iter
          (fun (p : Perf.Multi_vm.point) ->
            Format.printf "%-10s %-6s %4d %10.3f@."
              p.Perf.Multi_vm.workload.Perf.Workload.name
              (match p.Perf.Multi_vm.hypervisor with
              | Perf.Cost_model.Kvm -> "kvm"
              | Perf.Cost_model.Sekvm -> "sekvm")
              p.Perf.Multi_vm.n_vms p.Perf.Multi_vm.normalized_perf)
          pts
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"regenerate an evaluation table/figure")
    Term.(const run $ what)

(* ------------------------------------------------------------------ *)

let scenario_cmd =
  let run () =
    let out = Vrm.Scenario.standard_run () in
    Format.printf "VMs booted: %s@."
      (String.concat ", " (List.map string_of_int out.Vrm.Scenario.vmids));
    Format.printf "guest work checksum: %d@." out.Vrm.Scenario.guest_sum;
    List.iter
      (fun (name, denied) ->
        Format.printf "attack %-24s %s@." name
          (if denied then "DENIED" else "SUCCEEDED (BAD)"))
      out.Vrm.Scenario.attack_results;
    let bad = Sekvm.Kcore.check_invariants out.Vrm.Scenario.kcore in
    Format.printf "invariant violations: %d@." (List.length bad);
    if
      List.exists (fun (_, d) -> not d) out.Vrm.Scenario.attack_results
      || bad <> []
    then exit 1
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"run the standard whole-system scenario")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let stress_cmd =
  let n_vms = Arg.(value & opt int 6 & info [ "vms" ] ~docv:"N") in
  let rounds = Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N") in
  let run n_vms rounds =
    let s = Vrm.Scenario.stress_run ~n_vms ~rounds () in
    Format.printf
      "%d VMs x %d rounds: %d guest ops, %d stage-2 faults, %d hypercalls,        %d vIPIs; invariants held at every checkpoint@."
      s.Vrm.Scenario.st_vms s.Vrm.Scenario.st_rounds
      s.Vrm.Scenario.st_guest_ops s.Vrm.Scenario.st_s2_faults
      s.Vrm.Scenario.st_hypercalls s.Vrm.Scenario.st_vipis
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:"run many VMs concurrently with invariants checked every round")
    Term.(const run $ n_vms $ rounds)

let sweep_cmd =
  let run () =
    Format.printf "SeKVM/KVM hypercall ratio vs TLB capacity (m400-class):@.";
    List.iter
      (fun (n, r) -> Format.printf "  %5d entries: %5.2fx@." n r)
      (Perf.Micro.tlb_sweep ());
    Format.printf "@.with 2MB KServ stage-2 blocks (ablation):@.";
    List.iter
      (fun (r : Perf.Micro.row) ->
        if r.Perf.Micro.hw_name = "m400" then
          Format.printf "  %-12s %5.2fx@." r.Perf.Micro.bench.Perf.Micro.name
            r.Perf.Micro.overhead)
      (Perf.Micro.table3 ~kserv_hugepages:true ())
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"TLB-capacity and huge-page ablations")
    Term.(const run $ const ())

let migrate_cmd =
  let run () =
    let cfg = Sekvm.Kcore.default_boot_config in
    let src = Sekvm.Kcore.boot cfg in
    let src_kserv = Sekvm.Kserv.create src ~first_free_pfn:(Sekvm.Kcore.kserv_base cfg) in
    match Sekvm.Kserv.boot_vm src_kserv ~cpu:0 ~n_vcpus:1 ~image_pages:2 with
    | Error _ -> Format.printf "boot failed@."; exit 1
    | Ok vmid ->
        ignore
          (Sekvm.Kserv.run_guest src_kserv ~cpu:1 ~vmid ~vcpuid:0
             [ Sekvm.Vm.G_write (Machine.Page_table.page_va 50, 777) ]);
        let pages = Sekvm.Kcore.export_vm src ~cpu:0 ~vmid in
        let dst = Sekvm.Kcore.boot cfg in
        let dst_kserv =
          Sekvm.Kserv.create dst ~first_free_pfn:(Sekvm.Kcore.kserv_base cfg)
        in
        let new_vmid =
          Sekvm.Kcore.import_vm dst ~cpu:0 ~pages
            ~donate:(fun () -> Sekvm.Kserv.alloc_page dst_kserv)
            ~n_vcpus:1
        in
        (match
           Sekvm.Kserv.run_guest dst_kserv ~cpu:1 ~vmid:new_vmid ~vcpuid:0
             [ Sekvm.Vm.G_read (Machine.Page_table.page_va 50) ]
         with
        | [ Sekvm.Vm.R_value 777 ] ->
            Format.printf
              "migrated VM %d -> VM %d: guest state intact; invariants:                src %d, dst %d violations@."
              vmid new_vmid
              (List.length (Sekvm.Kcore.check_invariants src))
              (List.length (Sekvm.Kcore.check_invariants dst))
        | _ ->
            Format.printf "migration corrupted guest state@.";
            exit 1)
  in
  Cmd.v
    (Cmd.info "migrate" ~doc:"export a VM from one host and import on another")
    Term.(const run $ const ())

let axiomatic_cmd =
  let test_name =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let run test_name =
    let corpus = Memmodel.Paper_examples.all @ Memmodel.Litmus_suite.all in
    let tests =
      match test_name with
      | None -> corpus
      | Some n ->
          List.filter
            (fun t -> t.Memmodel.Litmus.prog.Memmodel.Prog.name = n)
            corpus
    in
    let cfg =
      { Memmodel.Promising.default_config with max_promises = 2;
        cert_depth = 40 }
    in
    List.iter
      (fun (t : Memmodel.Litmus.t) ->
        match Memmodel.Axiomatic.run t.Memmodel.Litmus.prog with
        | ax ->
            let pr =
              Vrm.Refinement.normals
                (Memmodel.Promising.run ~config:cfg t.Memmodel.Litmus.prog)
            in
            Format.printf "%-26s axiomatic=%d promising=%d  %s@."
              t.Memmodel.Litmus.prog.Memmodel.Prog.name
              (Memmodel.Behavior.cardinal ax)
              (Memmodel.Behavior.cardinal pr)
              (if Memmodel.Behavior.equal ax pr then "AGREE"
               else if Memmodel.Behavior.subset pr ax then
                 "promising under-approximates (bounded promises/RMWs)"
               else "DISAGREE")
        | exception Memmodel.Axiomatic.Unsupported why ->
            Format.printf "%-26s outside the axiomatic fragment (%s)@."
              t.Memmodel.Litmus.prog.Memmodel.Prog.name why)
      tests
  in
  Cmd.v
    (Cmd.info "axiomatic"
       ~doc:"compare the Promising executor against the Armv8 axiomatic model")
    Term.(const run $ test_name)

let repair_cmd =
  let test_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME")
  in
  let run test_name =
    let corpus =
      List.map
        (fun (t : Memmodel.Litmus.t) -> (t.Memmodel.Litmus.prog, t.Memmodel.Litmus.rm_config))
        (Memmodel.Paper_examples.all @ Memmodel.Litmus_suite.all)
      @ List.map
          (fun (e : Sekvm.Kernel_progs.entry) ->
            (e.Sekvm.Kernel_progs.prog, Some e.Sekvm.Kernel_progs.rm_config))
          (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus)
    in
    match
      List.find_opt
        (fun (p, _) -> p.Memmodel.Prog.name = test_name)
        corpus
    with
    | None ->
        Format.eprintf "unknown program %s@." test_name;
        exit 1
    | Some (prog, config) ->
        let r = Vrm.Synthesis.repair ?config prog in
        Format.printf "%a@." Vrm.Synthesis.pp_result r;
        if r.Vrm.Synthesis.repaired = None
           && not r.Vrm.Synthesis.original.Vrm.Refinement.holds
        then exit 1
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:"synthesize minimal acquire/release upgrades for a racy program")
    Term.(const run $ test_name)

(* ------------------------------------------------------------------ *)
(* vrmd: the verification service                                      *)
(* ------------------------------------------------------------------ *)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/vrmd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"daemon socket path")

(* A client command against a daemon that is not there should be a clean
   diagnostic, not a backtrace. *)
let with_daemon socket f =
  try f () with
  | Unix.Unix_error (e, _, _) ->
      Format.eprintf "cannot reach vrmd at %s: %s@." socket
        (Unix.error_message e);
      exit 1
  | Failure msg ->
      Format.eprintf "vrmd at %s: %s@." socket msg;
      exit 1

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"worker domains (0 = one per available core)")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"persist verification results under $(docv)")
  in
  let journal_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "journal queued jobs to $(docv) and replay the pending set \
             on startup, so a corpus-wide submission survives a restart")
  in
  let no_hot =
    Arg.(
      value & flag
      & info [ "no-hot" ]
          ~doc:
            "disable the sharded in-memory hot tier (every cache lookup \
             goes to disk; results are identical)")
  in
  let hot_capacity =
    Arg.(
      value & opt int 1024
      & info [ "hot-capacity" ] ~docv:"N"
          ~doc:"hot-tier capacity in entries, LRU-evicted per shard")
  in
  let hot_shards =
    Arg.(
      value & opt int 16
      & info [ "hot-shards" ] ~docv:"N"
          ~doc:"hot-tier shard count (rounded up to a power of two)")
  in
  let interactive_depth =
    Arg.(
      value & opt int 64
      & info [ "interactive-depth" ] ~docv:"N"
          ~doc:
            "interactive lane queue bound; submissions beyond it are \
             shed with a retry-after hint")
  in
  let bulk_depth =
    Arg.(
      value & opt int 256
      & info [ "bulk-depth" ] ~docv:"N" ~doc:"bulk lane queue bound")
  in
  let run socket workers cache_dir journal_path no_hot hot_capacity
      hot_shards interactive_depth bulk_depth =
    let log msg = Format.eprintf "%s@." msg in
    let cache =
      Cache.Store.create ?dir:cache_dir
        ~engine_version:Memmodel.Engine.version ()
    in
    let workers = if workers <= 0 then None else Some workers in
    let journal, pending =
      match journal_path with
      | None -> (None, [])
      | Some p ->
          let j, pending = Service.Journal.open_ p in
          (Some j, pending)
    in
    let sched =
      Service.Scheduler.create ?workers ~cache ~hot:(not no_hot)
        ~hot_shards ~hot_capacity ~interactive_depth ~bulk_depth ?journal ()
    in
    (match pending with
    | [] -> ()
    | _ ->
        let n = Service.Scheduler.replay sched pending in
        log
          (Printf.sprintf "vrmd: replayed %d/%d journaled job(s)" n
             (List.length pending)));
    Fun.protect
      ~finally:(fun () -> Option.iter Service.Journal.close journal)
      (fun () -> Service.Server.serve ~socket ~log sched)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"run the vrmd verification daemon on a Unix socket")
    Term.(
      const run $ socket_arg $ workers $ cache_dir $ journal_path $ no_hot
      $ hot_capacity $ hot_shards $ interactive_depth $ bulk_depth)

(* Recompute a job's result directly (no service, no cache) and compare
   the content digests against the payload the daemon returned. *)
let verify_payload ~backend (job : Service.Protocol.job)
    (data : Cache.Json.t) : (unit, string) result =
  let beh = Memmodel.Fingerprint.behaviors in
  match Service.Scheduler.lookup_job job with
  | Error e -> Error e
  | Ok (Service.Scheduler.Litmus_spec t) when backend = Service.Protocol.Bmc
    ->
      let remote = Cache.Codec.bmc_of_json data in
      let rm = Bmc.check ~mode:Bmc.Arm t.Memmodel.Litmus.prog in
      let sc = Bmc.check ~mode:Bmc.Sc t.Memmodel.Litmus.prog in
      let local = Cache.Codec.bmc_summary t ~rm ~sc in
      if
        local.Cache.Codec.b_prog_digest = remote.Cache.Codec.b_prog_digest
        && beh local.Cache.Codec.b_rm = beh remote.Cache.Codec.b_rm
        && beh local.Cache.Codec.b_sc = beh remote.Cache.Codec.b_sc
        && local.Cache.Codec.b_rm_sat = remote.Cache.Codec.b_rm_sat
      then Ok ()
      else Error "bmc payload disagrees with direct run"
  | Ok (Service.Scheduler.Litmus_spec t) ->
      let remote = Cache.Codec.litmus_of_json data in
      let local = Cache.Codec.litmus_summary (Memmodel.Litmus.run t) in
      if
        local.Cache.Codec.l_prog_digest = remote.Cache.Codec.l_prog_digest
        && beh local.Cache.Codec.l_sc = beh remote.Cache.Codec.l_sc
        && beh local.Cache.Codec.l_rm = beh remote.Cache.Codec.l_rm
        && beh local.Cache.Codec.l_rm_only = beh remote.Cache.Codec.l_rm_only
        && local.Cache.Codec.l_as_expected = remote.Cache.Codec.l_as_expected
      then Ok ()
      else Error "litmus payload disagrees with direct run"
  | Ok (Service.Scheduler.Refine_spec e)
    when Cache.Codec.refine_served_by_static data ->
      (* A statically served payload carries no behavior sets; verifying
         it means re-running the analyzer and checking it still fully
         discharges the entry. *)
      let remote = Cache.Codec.refine_of_json data in
      let a = Analysis.Driver.analyze e in
      if
        a.Analysis.Driver.a_prog_digest = remote.Cache.Codec.r_prog_digest
        && a.Analysis.Driver.a_overall = Analysis.Diag.Pass
        && a.Analysis.Driver.a_refinement = Analysis.Diag.Pass
        && remote.Cache.Codec.r_holds
      then Ok ()
      else Error "static payload disagrees with a fresh lint run"
  | Ok (Service.Scheduler.Refine_spec e) ->
      let remote = Cache.Codec.refine_of_json data in
      let v =
        Vrm.Refinement.check ~config:e.Sekvm.Kernel_progs.rm_config
          e.Sekvm.Kernel_progs.prog
      in
      let local =
        Cache.Codec.refine_summary ~name:e.Sekvm.Kernel_progs.name
          e.Sekvm.Kernel_progs.prog v
      in
      if
        local.Cache.Codec.r_prog_digest = remote.Cache.Codec.r_prog_digest
        && beh local.Cache.Codec.r_sc = beh remote.Cache.Codec.r_sc
        && beh local.Cache.Codec.r_rm = beh remote.Cache.Codec.r_rm
        && beh local.Cache.Codec.r_rm_only = beh remote.Cache.Codec.r_rm_only
        && local.Cache.Codec.r_holds = remote.Cache.Codec.r_holds
      then Ok ()
      else Error "refinement payload disagrees with direct run"
  | Ok (Service.Scheduler.Certify_spec v) ->
      let local =
        Cache.Codec.certificate_to_json
          (Vrm.Certificate.summarize (Vrm.Certificate.certify v))
      in
      if Cache.Json.to_string local = Cache.Json.to_string data then Ok ()
      else Error "certificate payload disagrees with direct run"

let submit_cmd =
  let kind =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("litmus", `Litmus); ("refine", `Refine);
                  ("certify", `Certify); ("corpus", `Corpus) ]))
          None
      & info [] ~docv:"KIND"
          ~doc:"litmus NAME | refine NAME | certify | corpus")
  in
  let name_arg = Arg.(value & pos 1 (some string) None & info [] ~docv:"NAME") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"exploration domains per job")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc:"per-job deadline")
  in
  let linux =
    Arg.(value & opt string "5.5" & info [ "linux" ] ~docv:"VERSION")
  in
  let levels = Arg.(value & opt int 4 & info [ "levels" ] ~docv:"N") in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "recompute each result locally and fail unless the daemon's \
             payload matches digest-for-digest")
  in
  let no_cert_cache =
    Arg.(
      value & flag
      & info [ "no-cert-cache" ]
          ~doc:
            "ask the daemon to run with certification memoization \
             disabled (part of its result-cache key)")
  in
  let no_por =
    Arg.(
      value & flag
      & info [ "no-por" ]
          ~doc:
            "ask the daemon to explore without partial-order reduction \
             (identical behavior sets; part of its result-cache key)")
  in
  let no_sym =
    Arg.(
      value & flag
      & info [ "no-sym" ]
          ~doc:
            "ask the daemon to explore without thread-symmetry reduction \
             (identical behavior sets; part of its result-cache key)")
  in
  let backend =
    Arg.(
      value
      & opt
          (enum
             [ ("explicit", Service.Protocol.Explicit);
               ("bmc", Service.Protocol.Bmc) ])
          Service.Protocol.Explicit
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "deciding engine for litmus jobs: $(b,explicit) or $(b,bmc) \
             (part of the daemon's result-cache key)")
  in
  let bulk =
    Arg.(
      value & flag
      & info [ "bulk" ]
          ~doc:
            "submit on the bulk lane: interactive submissions overtake \
             these, and a saturated bulk lane sheds new work with a \
             retry-after hint instead of queueing without bound")
  in
  let run socket kind name jobs deadline linux levels verify no_cert_cache
      no_por no_sym backend bulk =
    let lane =
      if bulk then Service.Protocol.Bulk else Service.Protocol.Interactive
    in
    let jobs_to_run =
      match (kind, name) with
      | `Litmus, Some n -> [ Service.Protocol.Litmus n ]
      | `Refine, Some n -> [ Service.Protocol.Refine n ]
      | (`Litmus | `Refine), None ->
          Format.eprintf "NAME is required for this kind@.";
          exit 2
      | `Certify, _ ->
          [ Service.Protocol.Certify { linux; stage2_levels = levels } ]
      | `Corpus, _ ->
          List.map
            (fun (t : Memmodel.Litmus.t) ->
              Service.Protocol.Litmus t.Memmodel.Litmus.prog.Memmodel.Prog.name)
            (Memmodel.Paper_examples.all @ Memmodel.Litmus_suite.all)
          @ List.map
              (fun (e : Sekvm.Kernel_progs.entry) ->
                Service.Protocol.Refine e.Sekvm.Kernel_progs.name)
              (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus)
    in
    let describe = function
      | Service.Protocol.Litmus n -> ("litmus", n)
      | Service.Protocol.Refine n -> ("refine", n)
      | Service.Protocol.Certify { linux; stage2_levels } ->
          ("certify", Printf.sprintf "%s/%d" linux stage2_levels)
    in
    let failed = ref false in
    List.iter
      (fun job ->
        let k, n = describe job in
        match
          with_daemon socket (fun () ->
              Service.Client.submit ~socket ~jobs ?deadline_s:deadline ~lane
                ~backend ~cert_cache:(not no_cert_cache) ~por:(not no_por)
                ~sym:(not no_sym) job)
        with
        | Error msg ->
            failed := true;
            Format.printf "%-8s %-26s ERROR %s@." k n msg
        | Ok payload -> (
            let data = Cache.Json.member "data" payload in
            let cached =
              try Cache.Json.to_bool (Cache.Json.member "from_cache" payload)
              with _ -> false
            in
            let wall =
              try Cache.Json.to_float (Cache.Json.member "wall_s" payload)
              with _ -> 0.
            in
            let verdict =
              if verify then
                match verify_payload ~backend job data with
                | Ok () -> " verified"
                | Error msg ->
                    failed := true;
                    " MISMATCH: " ^ msg
              else ""
            in
            Format.printf "%-8s %-26s ok%s (%.3fs)%s@." k n
              (if cached then " cached" else "")
              wall verdict))
      jobs_to_run;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "submit" ~doc:"submit verification jobs to a running vrmd")
    Term.(
      const run $ socket_arg $ kind $ name_arg $ jobs $ deadline $ linux
      $ levels $ verify $ no_cert_cache $ no_por $ no_sym $ backend $ bulk)

let lint_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"NAME" ~doc:"kernel program to lint")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"emit one JSON payload per entry")
  in
  let corpus_flag =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:
            "lint every corpus entry (certified, buggy, boundary, lint) \
             and cross-validate each verdict against the dynamic checkers")
  in
  let engine_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("bounded", `Bounded); ("fixpoint", `Fixpoint);
               ("both", `Both) ])
          `Fixpoint
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "analysis engine: $(b,bounded) (exhaustive path enumeration, \
             loops unrolled 0/1), $(b,fixpoint) (abstract-interpretation \
             dataflow, the default), or $(b,both) (run both and report \
             any per-pass verdict divergence; unpinned divergences fail \
             the run)")
  in
  let stats_flag =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "print per-pass wall time, CFG size and dataflow solver \
             iteration counts")
  in
  let run name json corpus engine stats =
    let entries =
      Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus
      @ Sekvm.Kernel_progs.boundary_corpus @ Sekvm.Kernel_progs.lint_corpus
    in
    let selected =
      if corpus then entries
      else
        match name with
        | None ->
            Format.eprintf "NAME or --corpus is required@.";
            exit 2
        | Some n -> (
            match
              List.find_opt
                (fun (e : Sekvm.Kernel_progs.entry) ->
                  e.Sekvm.Kernel_progs.name = n)
                entries
            with
            | Some e -> [ e ]
            | None ->
                Format.eprintf "unknown kernel program %S@." n;
                exit 2)
    in
    let failed = ref false in
    let definite = ref 0 in
    let pinned_div = ref 0 and unpinned_div = ref 0 in
    List.iter
      (fun (e : Sekvm.Kernel_progs.entry) ->
        let a =
          Analysis.Driver.analyze
            ~engine:
              (match engine with
              | `Bounded -> Analysis.Driver.Bounded
              | `Fixpoint | `Both -> Analysis.Driver.Fixpoint)
            e
        in
        definite := !definite + List.length (Analysis.Driver.definite_codes a);
        if json then
          print_endline (Cache.Json.to_string (Analysis.Driver.to_json a))
        else Format.printf "%a@." Analysis.Driver.pp a;
        if stats then Format.printf "%a@." Analysis.Driver.pp_stats a;
        (if engine = `Both then begin
           let b = Analysis.Driver.analyze ~engine:Analysis.Driver.Bounded e in
           if stats then Format.printf "%a@." Analysis.Driver.pp_stats b;
           let pinned =
             Option.value ~default:[]
               (List.assoc_opt e.Sekvm.Kernel_progs.name
                  Sekvm.Kernel_progs.lint_divergences)
           in
           List.iter
             (fun (p : Analysis.Driver.pass) ->
               let vb =
                 Analysis.Driver.pass_verdict b p.Analysis.Driver.p_name
               in
               if vb <> p.Analysis.Driver.p_verdict then
                 if List.mem p.Analysis.Driver.p_name pinned then begin
                   incr pinned_div;
                   Format.printf
                     "  divergence (pinned) %s/%s: bounded %s, fixpoint %s@."
                     e.Sekvm.Kernel_progs.name p.Analysis.Driver.p_name
                     (Analysis.Diag.verdict_name vb)
                     (Analysis.Diag.verdict_name p.Analysis.Driver.p_verdict)
                 end
                 else begin
                   incr unpinned_div;
                   failed := true;
                   Format.eprintf
                     "  DIVERGENCE %s/%s: bounded %s, fixpoint %s \
                      (not pinned in Kernel_progs.lint_divergences)@."
                     e.Sekvm.Kernel_progs.name p.Analysis.Driver.p_name
                     (Analysis.Diag.verdict_name vb)
                     (Analysis.Diag.verdict_name p.Analysis.Driver.p_verdict)
                 end)
             a.Analysis.Driver.a_passes
         end);
        let r = Analysis.Validate.entry e in
        if not (Analysis.Validate.ok r) then begin
          failed := true;
          Format.eprintf "%a@." Analysis.Validate.pp_report r
        end)
      selected;
    if not json then begin
      Format.printf "%d entries linted, %d definite finding(s), \
                     cross-validation %s@."
        (List.length selected) !definite
        (if !failed then "FAILED" else "ok");
      if engine = `Both then
        Format.printf "engine agreement: %d pinned divergence(s), %d \
                       unpinned@."
          !pinned_div !unpinned_div
    end;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "run the static wDRF analyzer (and its dynamic cross-validation) \
          over kernel programs")
    Term.(const run $ name_arg $ json $ corpus_flag $ engine_arg $ stats_flag)

let status_cmd =
  let run socket =
    match with_daemon socket (fun () -> Service.Client.status ~socket) with
    | Ok payload -> print_endline (Cache.Json.to_string payload)
    | Error msg ->
        Format.eprintf "status failed: %s@." msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "status" ~doc:"print a running vrmd's service counters")
    Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    match with_daemon socket (fun () -> Service.Client.shutdown ~socket) with
    | Ok () -> ()
    | Error msg ->
        Format.eprintf "shutdown failed: %s@." msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"gracefully stop a running vrmd")
    Term.(const run $ socket_arg)

let cache_gc_cmd =
  let cache_dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"the result-cache directory to sweep")
  in
  let max_entries =
    Arg.(
      value & opt int 4096
      & info [ "max-entries" ] ~docv:"N"
          ~doc:
            "keep at most $(docv) entries, least-recently-used evicted \
             first (a served hit refreshes an entry's recency)")
  in
  let run cache_dir max_entries =
    if max_entries < 0 then begin
      Format.eprintf "--max-entries must be non-negative@.";
      exit 2
    end;
    let store =
      Cache.Store.create ~dir:cache_dir
        ~engine_version:Memmodel.Engine.version ()
    in
    let r = Cache.Store.gc store ~max_entries in
    Format.printf "%s: %d entr%s examined, %d deleted, %d kept@." cache_dir
      r.Cache.Store.examined
      (if r.Cache.Store.examined = 1 then "y" else "ies")
      r.Cache.Store.deleted r.Cache.Store.kept
  in
  Cmd.v
    (Cmd.info "cache-gc"
       ~doc:"evict least-recently-used entries from a result-cache directory")
    Term.(const run $ cache_dir $ max_entries)

(* ------------------------------------------------------------------ *)
(* bench-serve: the multi-tenant serving benchmark                     *)
(* ------------------------------------------------------------------ *)

(* Nearest-rank percentile over an ascending array of samples. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    sorted.(max 0 (min (n - 1) (int_of_float (ceil (float n *. p /. 100.)) - 1)))

(* The warm-path micro-measurement behind the hot-tier acceptance gate:
   the p50 cost of serving one warm entry from the sharded memory tier
   vs re-reading (open + checksum + parse) it from disk. Single calls
   sit at the clock's resolution, so each sample times a batch. *)
let warm_path_micro () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrmd-warmpath-%d" (Unix.getpid ()))
  in
  let store =
    Cache.Store.create ~dir ~engine_version:Memmodel.Engine.version ()
  in
  let spec =
    Service.Scheduler.Litmus_spec Memmodel.Paper_examples.mp_plain
  in
  let key = Service.Scheduler.cache_key spec in
  let payload =
    Cache.Codec.litmus_to_json
      (Cache.Codec.litmus_summary
         (Memmodel.Litmus.run Memmodel.Paper_examples.mp_plain))
  in
  Cache.Store.add store key payload;
  let hot = Cache.Hot.create store in
  ignore (Cache.Hot.find hot key);
  let samples = 60 and batch = 200 in
  let time_batches f =
    Array.init samples (fun _ ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to batch do
          ignore (f ())
        done;
        (Unix.gettimeofday () -. t0) /. float batch *. 1e6)
  in
  let hot_us = time_batches (fun () -> Cache.Hot.find hot key) in
  let disk_us = time_batches (fun () -> Cache.Store.find store key) in
  Array.sort compare hot_us;
  Array.sort compare disk_us;
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
     Unix.rmdir dir
   with _ -> ());
  let hot_p50 = Float.max 1e-3 (percentile hot_us 50.) in
  let disk_p50 = percentile disk_us 50. in
  (hot_p50, disk_p50, disk_p50 /. hot_p50)

let bench_serve_cmd =
  let requests =
    Arg.(
      value & opt int 2000
      & info [ "requests" ] ~docv:"N"
          ~doc:"total requests across all client threads")
  in
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"M"
          ~doc:"concurrent client threads, one connection each")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"daemon worker domains (0 = one per available core)")
  in
  let bulk_depth =
    Arg.(
      value & opt int 4
      & info [ "bulk-depth" ] ~docv:"N"
          ~doc:
            "bulk lane queue bound; small enough that concurrent bulk \
             clients saturate it and observe load-shedding")
  in
  let json_path =
    Arg.(
      value & opt string "BENCH_service.json"
      & info [ "json" ] ~docv:"PATH" ~doc:"write the result object to $(docv)")
  in
  let run requests clients workers bulk_depth json_path =
    let tmp =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "vrmd-bench-serve-%d" (Unix.getpid ()))
    in
    let socket = tmp ^ ".sock" in
    let cache_dir = tmp ^ ".cache" in
    let cache =
      Cache.Store.create ~dir:cache_dir
        ~engine_version:Memmodel.Engine.version ()
    in
    let sched =
      Service.Scheduler.create
        ?workers:(if workers <= 0 then None else Some workers)
        ~cache ~bulk_depth ()
    in
    let server =
      Thread.create (fun () -> Service.Server.serve ~socket sched) ()
    in
    let rec wait n =
      if n = 0 then begin
        Format.eprintf "bench-serve: daemon did not come up@.";
        exit 1
      end;
      if not (Sys.file_exists socket) then begin
        Thread.delay 0.05;
        wait (n - 1)
      end
    in
    wait 100;
    (* Workload: interactive requests replay the warm litmus corpus (a
       refinement job every 16th request); bulk requests do the same,
       except that every 4th one flips a flag combination — a distinct
       cache key, hence a cold exploration. The cold work lands only on
       the bulk lane, so it is the bulk lane that saturates and sheds,
       while interactive requests measure the fleet's serving latency
       under that pressure. *)
    let names =
      Array.of_list
        (List.map
           (fun (t : Memmodel.Litmus.t) ->
             t.Memmodel.Litmus.prog.Memmodel.Prog.name)
           (Memmodel.Paper_examples.all @ Memmodel.Litmus_suite.all))
    in
    let job_of i =
      if i mod 16 = 7 then Service.Protocol.Refine "gen_vmid"
      else Service.Protocol.Litmus names.(i mod Array.length names)
    in
    (* bulk-heavy, like a fleet mostly running corpus sweeps: three
       bulk requests for every interactive one, so concurrent bulk
       submissions can actually outrun the lane bound and shed *)
    let lane_of i =
      if i mod 4 = 0 then Service.Protocol.Interactive
      else Service.Protocol.Bulk
    in
    (* (cert_cache, por, sym) combinations other than the default: each
       (name, combo) pair keys its own cache entry *)
    let variants =
      [| (false, true, true); (true, false, true); (true, true, false);
         (false, false, true); (false, true, false); (true, false, false);
         (false, false, false) |]
    in
    let flags_of i lane =
      if lane = Service.Protocol.Bulk && i mod 8 = 1 then
        variants.(i / 8 mod Array.length variants)
      else (true, true, true)
    in
    (* warm-up: one pass over the default-flag working set, untimed, so
       the measured phase starts with the hot tier populated *)
    Service.Client.with_connection ~socket (fun fd ->
        let warm job =
          ignore
            (Service.Client.roundtrip fd
               (Service.Protocol.Submit
                  { job; jobs = 1; deadline_s = None;
                    backend = Service.Protocol.Explicit; cert_cache = true;
                    por = true; sym = true;
                    lane = Service.Protocol.Interactive }))
        in
        Array.iter (fun n -> warm (Service.Protocol.Litmus n)) names;
        warm (Service.Protocol.Refine "gen_vmid"));
    let per_thread = Array.make (max 1 clients) [] in
    let t_start = Unix.gettimeofday () in
    let threads =
      List.init (max 1 clients) (fun c ->
          Thread.create
            (fun () ->
              Service.Client.with_connection ~socket (fun fd ->
                  let acc = ref [] in
                  let i = ref c in
                  while !i < requests do
                    let job = job_of !i and lane = lane_of !i in
                    let cert_cache, por, sym = flags_of !i lane in
                    let t0 = Unix.gettimeofday () in
                    let out =
                      match
                        Service.Client.roundtrip fd
                          (Service.Protocol.Submit
                             { job; jobs = 1; deadline_s = None;
                               backend = Service.Protocol.Explicit;
                               cert_cache; por; sym; lane })
                      with
                      | Service.Protocol.Result _ -> `Done
                      | Service.Protocol.Overloaded_r _ -> `Shed
                      | Service.Protocol.Error_r _
                      | Service.Protocol.Status_r _ | Service.Protocol.Bye ->
                          `Err
                    in
                    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
                    acc := (lane, ms, out) :: !acc;
                    i := !i + max 1 clients
                  done;
                  per_thread.(c) <- !acc))
            ())
    in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t_start in
    let all = Array.to_list per_thread |> List.concat in
    (* Digest parity, warm against the hot tier: every payload the
       daemon serves must match a local no-cache recomputation. *)
    let parity_jobs =
      Service.Protocol.Refine "gen_vmid"
      :: List.map
           (fun i -> Service.Protocol.Litmus names.(i))
           [ 0; 1; 2; 3; 4 ]
    in
    let parity_failures = ref 0 in
    List.iter
      (fun job ->
        match Service.Client.submit ~socket job with
        | Error msg ->
            incr parity_failures;
            Format.eprintf "bench-serve: parity submit failed: %s@." msg
        | Ok payload -> (
            match
              verify_payload ~backend:Service.Protocol.Explicit job
                (Cache.Json.member "data" payload)
            with
            | Ok () -> ()
            | Error msg ->
                incr parity_failures;
                Format.eprintf "bench-serve: DIGEST MISMATCH: %s@." msg))
      parity_jobs;
    let c = Service.Scheduler.counters sched in
    (match Service.Client.shutdown ~socket with
    | Ok () -> ()
    | Error msg -> Format.eprintf "bench-serve: shutdown failed: %s@." msg);
    Thread.join server;
    (try
       Array.iter
         (fun f -> Sys.remove (Filename.concat cache_dir f))
         (Sys.readdir cache_dir);
       Unix.rmdir cache_dir
     with _ -> ());
    (* per-lane aggregates; shed and errored requests return without
       computing, so only completed ones enter the latency percentiles *)
    let lane_stats lane =
      let mine = List.filter (fun (l, _, _) -> l = lane) all in
      let completed =
        List.filter_map
          (fun (_, ms, out) -> if out = `Done then Some ms else None)
          mine
      in
      let shed =
        List.length (List.filter (fun (_, _, out) -> out = `Shed) mine)
      in
      let errors =
        List.length (List.filter (fun (_, _, out) -> out = `Err) mine)
      in
      let sorted = Array.of_list completed in
      Array.sort compare sorted;
      ( List.length mine, Array.length sorted, shed, errors,
        percentile sorted 50., percentile sorted 90., percentile sorted 99. )
    in
    let i_req, i_done, i_shed, i_err, i_p50, i_p90, i_p99 =
      lane_stats Service.Protocol.Interactive
    in
    let b_req, b_done, b_shed, b_err, b_p50, b_p90, b_p99 =
      lane_stats Service.Protocol.Bulk
    in
    let hot_total =
      c.Service.Scheduler.hot_stats.Cache.Hot.hot_hits
      + c.Service.Scheduler.hot_stats.Cache.Hot.disk_hits
      + c.Service.Scheduler.hot_stats.Cache.Hot.misses
    in
    let hit_ratio =
      if hot_total = 0 then 0.
      else
        float c.Service.Scheduler.hot_stats.Cache.Hot.hot_hits
        /. float hot_total
    in
    let hot_p50_us, disk_p50_us, speedup = warm_path_micro () in
    (* With the bulk lane saturated by cold work, interactive latency
       must stay bounded: its tail cannot degrade to the bulk lane's
       queueing tail. Only meaningful once both lanes have enough
       samples for a stable p99. *)
    let interactive_bounded =
      if i_done >= 50 && b_done >= 50 then i_p99 <= b_p99 else true
    in
    let lane_json (req, done_, shed, err, p50, p90, p99) =
      Cache.Json.Obj
        [ ("requests", Cache.Json.Int req);
          ("completed", Cache.Json.Int done_);
          ("shed", Cache.Json.Int shed);
          ("errors", Cache.Json.Int err);
          ("p50_ms", Cache.Json.Float p50);
          ("p90_ms", Cache.Json.Float p90);
          ("p99_ms", Cache.Json.Float p99) ]
    in
    let result =
      Cache.Json.Obj
        [ ("schema", Cache.Json.String "vrm-bench-service");
          ("version", Cache.Json.Int 1);
          ("engine", Cache.Json.String Memmodel.Engine.version);
          ("requests", Cache.Json.Int requests);
          ("clients", Cache.Json.Int (max 1 clients));
          ("workers", Cache.Json.Int c.Service.Scheduler.workers);
          ("bulk_depth", Cache.Json.Int bulk_depth);
          ("wall_s", Cache.Json.Float wall);
          ( "throughput_rps",
            Cache.Json.Float
              (if wall > 0. then float requests /. wall else 0.) );
          ( "lanes",
            Cache.Json.Obj
              [ ( "interactive",
                  lane_json (i_req, i_done, i_shed, i_err, i_p50, i_p90, i_p99)
                );
                ( "bulk",
                  lane_json (b_req, b_done, b_shed, b_err, b_p50, b_p90, b_p99)
                ) ] );
          ("shed_total", Cache.Json.Int (i_shed + b_shed));
          ("unexplained_sheds", Cache.Json.Int i_shed);
          ("hot_hit_ratio", Cache.Json.Float hit_ratio);
          ( "hot",
            Cache.Hot.counters_to_json c.Service.Scheduler.hot_stats );
          ( "cache",
            Cache.Json.Obj
              [ ("hits", Cache.Json.Int c.Service.Scheduler.cache_stats.Cache.Store.hits);
                ("misses", Cache.Json.Int c.Service.Scheduler.cache_stats.Cache.Store.misses);
                ("stores", Cache.Json.Int c.Service.Scheduler.cache_stats.Cache.Store.stores);
                ("corrupt", Cache.Json.Int c.Service.Scheduler.cache_stats.Cache.Store.corrupt) ] );
          ("coalesced", Cache.Json.Int c.Service.Scheduler.coalesced);
          ("batches", Cache.Json.Int c.Service.Scheduler.batches);
          ("batched", Cache.Json.Int c.Service.Scheduler.batched);
          ("digest_parity", Cache.Json.Bool (!parity_failures = 0));
          ("parity_checked", Cache.Json.Int (List.length parity_jobs));
          ( "warm_path",
            Cache.Json.Obj
              [ ("hot_p50_us", Cache.Json.Float hot_p50_us);
                ("disk_p50_us", Cache.Json.Float disk_p50_us);
                ("speedup", Cache.Json.Float speedup) ] );
          ("interactive_bounded", Cache.Json.Bool interactive_bounded) ]
    in
    let oc = open_out json_path in
    output_string oc (Cache.Json.to_string result);
    output_string oc "\n";
    close_out oc;
    Format.printf
      "bench-serve: %d requests, %d clients, %.2fs (%.0f req/s)@."
      requests (max 1 clients) wall
      (if wall > 0. then float requests /. wall else 0.);
    Format.printf
      "  interactive: %d done, %d shed, p50 %.2fms p90 %.2fms p99 %.2fms@."
      i_done i_shed i_p50 i_p90 i_p99;
    Format.printf
      "  bulk:        %d done, %d shed, p50 %.2fms p90 %.2fms p99 %.2fms@."
      b_done b_shed b_p50 b_p90 b_p99;
    Format.printf
      "  hot tier: %.1f%% hit ratio; warm path %.2fus vs disk %.2fus         (%.1fx)@."
      (100. *. hit_ratio) hot_p50_us disk_p50_us speedup;
    Format.printf "  digest parity: %s; interactive tail %s@."
      (if !parity_failures = 0 then "ok" else "FAILED")
      (if interactive_bounded then "bounded" else "UNBOUNDED");
    let failed =
      !parity_failures > 0
      || speedup < 5.
      || i_shed > 0
      || (not interactive_bounded)
      || i_err + b_err > 0
    in
    if failed then begin
      if speedup < 5. then
        Format.eprintf
          "bench-serve: hot tier speedup %.1fx below the 5x gate@." speedup;
      if i_shed > 0 then
        Format.eprintf
          "bench-serve: %d interactive shed(s) — unexplained under this            load@."
          i_shed;
      if i_err + b_err > 0 then
        Format.eprintf "bench-serve: %d request error(s)@." (i_err + b_err);
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "serve a mixed cold/warm/shed workload through an in-process vrmd \
          and report per-lane latency percentiles")
    Term.(
      const run $ requests $ clients $ workers $ bulk_depth $ json_path)

let () =
  let doc = "VRM: verification of concurrent kernel code on Arm relaxed memory" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "vrm-cli" ~doc)
          [ litmus_cmd; certify_cmd; simulate_cmd; scenario_cmd; stress_cmd;
            sweep_cmd; migrate_cmd; axiomatic_cmd; repair_cmd; lint_cmd;
            serve_cmd; submit_cmd; status_cmd; shutdown_cmd; cache_gc_cmd;
            bench_serve_cmd ]))
