(* The content-addressed verification cache:

   - the JSON codec is its own inverse on everything the library emits;
   - behavior sets round-trip through the codec bit-identically (same
     Behavior.t, same Fingerprint digest) — the property that lets a
     cached result stand in for a recomputed one;
   - the on-disk store round-trips entries, and every corruption mode
     (truncation, garbage, bad checksum, engine-version skew) is a MISS
     that recomputes, never a crash;
   - cache keys are stable across runs and across [--jobs] values, and
     sensitive to program content, budgets and engine version. *)

open Memmodel
open Cache

let tmpdir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rmdir d =
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
   with _ -> ());
  try Unix.rmdir d with _ -> ()

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [ Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 0.125;
      Json.String "hello \"world\"\nwith\tescapes\x01";
      Json.List [ Json.Int 1; Json.Null; Json.String "x" ];
      Json.Obj
        [ ("a", Json.Int 1);
          ("b", Json.List [ Json.Bool false ]);
          ("nested", Json.Obj [ ("c", Json.Float 2.5) ]) ] ]
  in
  List.iter
    (fun v ->
      let s = Json.to_string v in
      match Json.of_string s with
      | Ok v' ->
          Alcotest.(check string) ("roundtrip " ^ s) s (Json.to_string v')
      | Error e -> Alcotest.failf "parse of %s failed: %s" s e)
    cases;
  (* malformed inputs are errors, not exceptions *)
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_behavior_roundtrip () =
  List.iter
    (fun (t : Litmus.t) ->
      let r = Litmus.run t in
      List.iter
        (fun (label, b) ->
          let b' = Codec.behaviors_of_json (Codec.behaviors_to_json b) in
          Alcotest.(check bool)
            (t.Litmus.prog.Prog.name ^ " " ^ label ^ " set equal")
            true (Behavior.equal b b');
          Alcotest.(check string)
            (t.Litmus.prog.Prog.name ^ " " ^ label ^ " digest")
            (Fingerprint.behaviors b) (Fingerprint.behaviors b'))
        [ ("sc", r.Litmus.sc); ("rm", r.Litmus.rm);
          ("rm-only", r.Litmus.rm_only) ])
    Paper_examples.all

let test_litmus_summary_roundtrip () =
  List.iter
    (fun (t : Litmus.t) ->
      let s = Codec.litmus_summary (Litmus.run t) in
      let j = Codec.litmus_to_json s in
      let s' = Codec.litmus_of_json j in
      Alcotest.(check string)
        (t.Litmus.prog.Prog.name ^ " payload stable")
        (Json.to_string j)
        (Json.to_string (Codec.litmus_to_json s')))
    Paper_examples.all;
  (* a tampered embedded digest must be rejected (-> cache miss) *)
  let s = Codec.litmus_summary (Litmus.run Paper_examples.mp_plain) in
  let j = Codec.litmus_to_json s in
  let tampered =
    match j with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "sc_digest" then (k, Json.String (String.make 32 '0'))
               else (k, v))
             fields)
    | _ -> assert false
  in
  (match Codec.litmus_of_json tampered with
  | exception Json.Decode _ -> ()
  | _ -> Alcotest.fail "tampered sc_digest was accepted")

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

let payload_a = Json.Obj [ ("answer", Json.Int 42) ]

let entry_file dir key = Filename.concat dir (key ^ ".vrmc")

let mk_key i =
  Store.make_key ~engine_version:Engine.version ~model:"m" ~budgets:"b"
    ~prog_digest:(Printf.sprintf "p%d" i)

let test_store_roundtrip () =
  let dir = tmpdir "vrm-cache-test" in
  Fun.protect
    ~finally:(fun () -> rmdir dir)
    (fun () ->
      let s = Store.create ~dir ~engine_version:Engine.version () in
      let key =
        Store.make_key ~engine_version:Engine.version ~model:"litmus"
          ~budgets:"b" ~prog_digest:"p"
      in
      Alcotest.(check bool) "empty store misses" true (Store.find s key = None);
      Store.add s key payload_a;
      (match Store.find s key with
      | Some v ->
          Alcotest.(check string) "disk roundtrip" (Json.to_string payload_a)
            (Json.to_string v)
      | None -> Alcotest.fail "lost entry");
      let c = Store.counters s in
      Alcotest.(check int) "hit counted" 1 c.Store.hits;
      Alcotest.(check int) "miss counted" 1 c.Store.misses;
      Alcotest.(check int) "one entry on disk" 1 c.Store.entries;
      (* a fresh store on the same dir reads it back from disk *)
      let s2 = Store.create ~dir ~engine_version:Engine.version () in
      (match Store.find s2 key with
      | Some v ->
          Alcotest.(check string) "disk hit" (Json.to_string payload_a)
            (Json.to_string v)
      | None -> Alcotest.fail "disk entry not found");
      (* a dirless store is the always-miss cache-off configuration *)
      let s3 = Store.create ~engine_version:Engine.version () in
      Store.add s3 key payload_a;
      Alcotest.(check bool) "dirless store never serves" true
        (Store.find s3 key = None))

let test_store_gc () =
  let dir = tmpdir "vrm-cache-gc" in
  Fun.protect
    ~finally:(fun () -> rmdir dir)
    (fun () ->
      let s = Store.create ~dir ~engine_version:Engine.version () in
      let keys = List.init 5 mk_key in
      List.iter (fun k -> Store.add s k payload_a) keys;
      (* pin distinct mtimes: key i aged (5 - i) hours, so key 4 is the
         newest and key 0 the oldest *)
      let now = Unix.gettimeofday () in
      List.iteri
        (fun i k ->
          let t = now -. (3600. *. float_of_int (5 - i)) in
          Unix.utimes (entry_file dir k) t t)
        keys;
      let r = Store.gc s ~max_entries:2 in
      Alcotest.(check int) "gc examined" 5 r.Store.examined;
      Alcotest.(check int) "gc deleted" 3 r.Store.deleted;
      Alcotest.(check int) "gc kept" 2 r.Store.kept;
      List.iteri
        (fun i k ->
          let survives = Sys.file_exists (entry_file dir k) in
          Alcotest.(check bool)
            (Printf.sprintf "key %d %s" i
               (if i >= 3 then "survives" else "evicted"))
            (i >= 3) survives)
        keys;
      (* a hit refreshes mtime, so recently-used entries survive gc even
         when old: age key 3 far below key 4, then touch it with a find *)
      let old = now -. 7200. in
      Unix.utimes (entry_file dir (mk_key 3)) old old;
      ignore (Store.find s (mk_key 3));
      let r2 = Store.gc s ~max_entries:1 in
      Alcotest.(check int) "second gc deleted" 1 r2.Store.deleted;
      Alcotest.(check bool) "recently-hit entry survives" true
        (Sys.file_exists (entry_file dir (mk_key 3)));
      Alcotest.(check bool) "unused entry evicted" false
        (Sys.file_exists (entry_file dir (mk_key 4))))

(* ------------------------------------------------------------------ *)
(* Hot tier                                                            *)
(* ------------------------------------------------------------------ *)

let test_hot_tier () =
  let dir = tmpdir "vrm-hot-test" in
  Fun.protect
    ~finally:(fun () -> rmdir dir)
    (fun () ->
      let store = Store.create ~dir ~engine_version:Engine.version () in
      let hot = Hot.create ~shards:4 ~capacity:64 store in
      let key = mk_key 0 in
      Alcotest.(check bool) "miss in both tiers" true
        (Hot.find hot key = None);
      Hot.add hot key payload_a;
      Alcotest.(check bool) "write-through: entry on disk" true
        (Sys.file_exists (entry_file dir key));
      (match Hot.find hot key with
      | Some v ->
          Alcotest.(check string) "hot hit payload"
            (Json.to_string payload_a) (Json.to_string v)
      | None -> Alcotest.fail "hot tier lost the entry");
      let c = Hot.counters hot in
      Alcotest.(check int) "hot hit counted" 1 c.Hot.hot_hits;
      Alcotest.(check int) "no disk hit yet" 0 c.Hot.disk_hits;
      (* the proof that warm hits never touch disk: destroy the disk
         entry, the hot tier still serves the decoded payload *)
      Out_channel.with_open_bin (entry_file dir key) (fun oc ->
          Out_channel.output_string oc "junk");
      (match Hot.find hot key with
      | Some v ->
          Alcotest.(check string) "hot hit despite corrupt disk"
            (Json.to_string payload_a) (Json.to_string v)
      | None -> Alcotest.fail "hot hit went to disk");
      (* a fresh hot tier over the corrupted entry misses both tiers *)
      let store2 = Store.create ~dir ~engine_version:Engine.version () in
      let hot2 = Hot.create ~shards:4 ~capacity:64 store2 in
      Alcotest.(check bool) "fresh tier sees the corruption" true
        (Hot.find hot2 key = None);
      (* heal the disk entry: a fresh tier promotes it (disk hit), then
         serves from memory (hot hit) *)
      Store.add store2 key payload_a;
      let store3 = Store.create ~dir ~engine_version:Engine.version () in
      let hot3 = Hot.create ~shards:4 ~capacity:64 store3 in
      Alcotest.(check bool) "promotion read" true (Hot.find hot3 key <> None);
      Alcotest.(check bool) "promoted hit" true (Hot.find hot3 key <> None);
      let c3 = Hot.counters hot3 in
      Alcotest.(check int) "one disk promotion" 1 c3.Hot.disk_hits;
      Alcotest.(check int) "one hot hit after promotion" 1 c3.Hot.hot_hits)

let test_hot_lru () =
  (* single shard, capacity 4: eviction is strictly least-recently-used,
     and a find refreshes recency *)
  let store = Store.create ~engine_version:Engine.version () in
  let hot = Hot.create ~shards:1 ~capacity:4 store in
  let keys = List.init 5 mk_key in
  let k i = List.nth keys i in
  List.iteri (fun i key -> if i < 4 then Hot.add hot key payload_a) keys;
  (* touch k0 so k1 becomes the LRU entry *)
  Alcotest.(check bool) "k0 resident" true (Hot.find hot (k 0) <> None);
  Hot.add hot (k 4) payload_a;
  let c = Hot.counters hot in
  Alcotest.(check int) "one eviction at capacity" 1 c.Hot.evictions;
  Alcotest.(check int) "size stays bounded" 4 c.Hot.size;
  Alcotest.(check bool) "LRU entry evicted" true (Hot.find hot (k 1) = None);
  Alcotest.(check bool) "recently-used entry survives" true
    (Hot.find hot (k 0) <> None);
  Alcotest.(check bool) "newest entry resident" true
    (Hot.find hot (k 4) <> None)

let test_hot_shards_and_off () =
  (* the shard index is decoded from the key's leading hex byte: keys
     with distinct prefixes land on distinct shards of a 4-shard tier *)
  let store = Store.create ~engine_version:Engine.version () in
  let hot = Hot.create ~shards:4 ~capacity:64 store in
  let prefixed p = p ^ String.make 30 'a' in
  List.iter
    (fun p -> Hot.add hot (prefixed p) payload_a)
    [ "00"; "01"; "02"; "03" ];
  let c = Hot.counters hot in
  Alcotest.(check int) "4 shards" 4 c.Hot.shard_count;
  Array.iteri
    (fun i sc ->
      Alcotest.(check int)
        (Printf.sprintf "shard %d holds one entry" i)
        1 sc.Hot.s_size)
    c.Hot.per_shard;
  (* a disabled tier is a pure pass-through: nothing resident, nothing
     counted — the cache-off parity configuration *)
  let dir = tmpdir "vrm-hot-off" in
  Fun.protect
    ~finally:(fun () -> rmdir dir)
    (fun () ->
      let store = Store.create ~dir ~engine_version:Engine.version () in
      let off = Hot.create ~enabled:false store in
      Hot.add off (mk_key 0) payload_a;
      Alcotest.(check bool) "disabled tier still writes through" true
        (Hot.find off (mk_key 0) <> None);
      let c = Hot.counters off in
      Alcotest.(check int) "disabled: nothing resident" 0 c.Hot.size;
      Alcotest.(check int) "disabled: no hot hits" 0 c.Hot.hot_hits;
      Alcotest.(check int) "disabled: no promotions" 0 c.Hot.disk_hits)

let test_store_corruption () =
  let dir = tmpdir "vrm-cache-corrupt" in
  Fun.protect
    ~finally:(fun () -> rmdir dir)
    (fun () ->
      let key =
        Store.make_key ~engine_version:Engine.version ~model:"m" ~budgets:"b"
          ~prog_digest:"p"
      in
      let corruptions =
        [ ("truncated to header", fun file ->
             let lines = String.split_on_char '\n' (In_channel.with_open_bin file In_channel.input_all) in
             Out_channel.with_open_bin file (fun oc ->
                 Out_channel.output_string oc (List.hd lines ^ "\n")));
          ("empty file", fun file ->
             Out_channel.with_open_bin file (fun _ -> ()));
          ("garbage bytes", fun file ->
             Out_channel.with_open_bin file (fun oc ->
                 Out_channel.output_string oc "\x00\xffnot a cache entry"));
          ("payload flipped", fun file ->
             let s = In_channel.with_open_bin file In_channel.input_all in
             let s = String.map (fun c -> if c = '4' then '5' else c) s in
             Out_channel.with_open_bin file (fun oc ->
                 Out_channel.output_string oc s)) ]
      in
      List.iter
        (fun (name, corrupt) ->
          let s = Store.create ~dir ~engine_version:Engine.version () in
          Store.add s key payload_a;
          corrupt (entry_file dir key);
          (* a fresh store must treat the mangled entry as a miss *)
          let s2 = Store.create ~dir ~engine_version:Engine.version () in
          (match Store.find s2 key with
          | None -> ()
          | Some _ -> Alcotest.failf "%s: corrupt entry served as a hit" name);
          (* ... and recomputing (re-adding) heals it *)
          Store.add s2 key payload_a;
          let s3 = Store.create ~dir ~engine_version:Engine.version () in
          match Store.find s3 key with
          | Some v ->
              Alcotest.(check string)
                (name ^ ": healed")
                (Json.to_string payload_a) (Json.to_string v)
          | None -> Alcotest.failf "%s: healed entry still missing" name)
        corruptions;
      (* counters saw the corruption *)
      let s = Store.create ~dir ~engine_version:Engine.version () in
      Store.add s key payload_a;
      Out_channel.with_open_bin (entry_file dir key) (fun oc ->
          Out_channel.output_string oc "junk");
      let s2 = Store.create ~dir ~engine_version:Engine.version () in
      ignore (Store.find s2 key);
      Alcotest.(check int) "corrupt counter" 1
        (Store.counters s2).Store.corrupt)

let test_store_version_skew () =
  let dir = tmpdir "vrm-cache-skew" in
  Fun.protect
    ~finally:(fun () -> rmdir dir)
    (fun () ->
      let key =
        Store.make_key ~engine_version:"vrm-engine/old" ~model:"m"
          ~budgets:"b" ~prog_digest:"p"
      in
      let old = Store.create ~dir ~engine_version:"vrm-engine/old" () in
      Store.add old key payload_a;
      (* same key on disk, but the store now speaks a newer engine
         version: stale entries must not be served *)
      let current = Store.create ~dir ~engine_version:"vrm-engine/new" () in
      Alcotest.(check bool) "stale engine version is a miss" true
        (Store.find current key = None))

(* ------------------------------------------------------------------ *)
(* Keys and fingerprints                                               *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_stability () =
  (* same value fingerprinted twice -> same digest (no sharing/physical
     equality sneaking in) *)
  List.iter
    (fun (t : Litmus.t) ->
      Alcotest.(check string)
        (t.Litmus.prog.Prog.name ^ " prog digest deterministic")
        (Fingerprint.prog t.Litmus.prog)
        (Fingerprint.prog t.Litmus.prog))
    Paper_examples.all;
  (* a rebuilt structurally-equal program digests identically *)
  let p1 = Sekvm.Kernel_progs.gen_vmid_prog ~barriers:true "a" in
  let p2 = Sekvm.Kernel_progs.gen_vmid_prog ~barriers:true "b" in
  Alcotest.(check string) "name does not affect the digest"
    (Fingerprint.prog p1) (Fingerprint.prog p2);
  let q = Sekvm.Kernel_progs.gen_vmid_prog ~barriers:false "a" in
  Alcotest.(check bool) "content does affect the digest" true
    (Fingerprint.prog p1 <> Fingerprint.prog q);
  (* distinct corpus programs never collide *)
  let digests =
    List.map
      (fun (t : Litmus.t) -> Fingerprint.prog t.Litmus.prog)
      (Paper_examples.all @ Litmus_suite.all)
  in
  Alcotest.(check int) "no digest collisions across the corpus"
    (List.length digests)
    (List.length (List.sort_uniq compare digests))

let test_key_stability () =
  let spec =
    Service.Scheduler.Litmus_spec Paper_examples.mp_plain
  in
  let k1 = Service.Scheduler.cache_key spec in
  let k2 = Service.Scheduler.cache_key spec in
  Alcotest.(check string) "key stable across calls" k1 k2;
  (* the key must not depend on --jobs: running the same spec with
     different parallelism through a shared cache yields a hit *)
  let cache = Store.create ~engine_version:Engine.version () in
  let sched = Service.Scheduler.create ~workers:2 ~cache () in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown sched)
    (fun () ->
      (match Service.Scheduler.run sched ~jobs:1 spec with
      | Service.Scheduler.Done _, m ->
          Alcotest.(check bool) "first run computes" false
            m.Service.Scheduler.from_cache
      | _ -> Alcotest.fail "first run did not complete");
      match Service.Scheduler.run sched ~jobs:4 spec with
      | Service.Scheduler.Done _, m ->
          Alcotest.(check bool) "jobs=4 rerun is a cache hit" true
            m.Service.Scheduler.from_cache
      | _ -> Alcotest.fail "second run did not complete");
  (* different specs get different keys *)
  let keys =
    List.map
      (fun (t : Litmus.t) ->
        Service.Scheduler.cache_key (Service.Scheduler.Litmus_spec t))
      (Paper_examples.all @ Litmus_suite.all)
  in
  Alcotest.(check int) "no key collisions"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let () =
  Alcotest.run "cache"
    [ ( "json",
        [ Alcotest.test_case "encoder/parser roundtrip" `Quick
            test_json_roundtrip ] );
      ( "codec",
        [ Alcotest.test_case "behavior sets roundtrip bit-identically" `Quick
            test_behavior_roundtrip;
          Alcotest.test_case "litmus summaries roundtrip; tampering rejected"
            `Quick test_litmus_summary_roundtrip ] );
      ( "store",
        [ Alcotest.test_case "disk roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "gc evicts LRU-by-mtime down to the bound"
            `Quick test_store_gc;
          Alcotest.test_case "every corruption mode is a miss, then heals"
            `Quick test_store_corruption;
          Alcotest.test_case "engine-version skew is a miss" `Quick
            test_store_version_skew ] );
      ( "hot",
        [ Alcotest.test_case "warm hits never touch disk; write-through"
            `Quick test_hot_tier;
          Alcotest.test_case "per-shard LRU eviction honors recency" `Quick
            test_hot_lru;
          Alcotest.test_case "shard placement; disabled tier passes through"
            `Quick test_hot_shards_and_off ] );
      ( "keys",
        [ Alcotest.test_case "program fingerprints stable and distinct"
            `Quick test_fingerprint_stability;
          Alcotest.test_case "cache keys stable, jobs-independent, distinct"
            `Quick test_key_stability ] ) ]
