(* The vrmd verification service:

   - parity: every corpus job submitted through the scheduler returns
     the same behavior-set digests as a direct Litmus.run /
     Refinement.check (the golden-digest acceptance criterion), with
     the hot tier on and off;
   - warm cache: resubmitting the corpus costs zero exploration and is
     served from the in-memory hot tier;
   - coalescing: identical in-flight submissions share one execution;
   - lanes: interactive submissions overtake an earlier bulk backlog,
     and a full lane sheds with [Overloaded] + retry-after;
   - deadlines: a job that ages out while queued (bulk lane included,
     and after a journal replay) is [Deadline_expired] without ever
     starting exploration; the engine's valve cuts short a running one;
   - durability: pending journal entries replay across a simulated
     kill-and-restart with bit-identical result payloads;
   - the daemon end-to-end: serve over a real Unix socket, submit,
     status, graceful shutdown; oversized frames are survivable errors;
   - the client survives a mid-restart daemon via bounded retry. *)

open Memmodel
open Cache
open Service

let with_sched ?(workers = 2) ?cache ?hot ?interactive_depth ?bulk_depth
    ?journal f =
  let cache =
    match cache with
    | Some c -> c
    | None -> Store.create ~engine_version:Engine.version ()
  in
  let sched =
    Scheduler.create ~workers ~cache ?hot ?interactive_depth ?bulk_depth
      ?journal ()
  in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) (fun () -> f sched)

let done_payload name = function
  | Scheduler.Done p, (m : Scheduler.meta) -> (p, m)
  | Scheduler.Timed_out, _ -> Alcotest.failf "%s timed out" name
  | Scheduler.Deadline_expired, _ ->
      Alcotest.failf "%s expired in the queue" name
  | Scheduler.Overloaded _, _ -> Alcotest.failf "%s was shed" name
  | Scheduler.Failed e, _ -> Alcotest.failf "%s failed: %s" name e

(* ------------------------------------------------------------------ *)
(* Parity with direct runs                                             *)
(* ------------------------------------------------------------------ *)

let test_litmus_parity () =
  with_sched (fun sched ->
      List.iter
        (fun (t : Litmus.t) ->
          let payload, _ =
            done_payload t.Litmus.prog.Prog.name
              (Scheduler.run sched (Scheduler.Litmus_spec t))
          in
          let remote = Codec.litmus_of_json payload in
          let local = Codec.litmus_summary (Litmus.run t) in
          let b = Fingerprint.behaviors in
          let n = t.Litmus.prog.Prog.name in
          Alcotest.(check string) (n ^ " prog digest")
            local.Codec.l_prog_digest remote.Codec.l_prog_digest;
          Alcotest.(check string) (n ^ " sc digest") (b local.Codec.l_sc)
            (b remote.Codec.l_sc);
          Alcotest.(check string) (n ^ " rm digest") (b local.Codec.l_rm)
            (b remote.Codec.l_rm);
          Alcotest.(check string) (n ^ " rm-only digest")
            (b local.Codec.l_rm_only)
            (b remote.Codec.l_rm_only);
          Alcotest.(check bool) (n ^ " as_expected")
            local.Codec.l_as_expected remote.Codec.l_as_expected)
        Paper_examples.all)

let test_refine_parity () =
  with_sched (fun sched ->
      List.iter
        (fun (e : Sekvm.Kernel_progs.entry) ->
          let payload, _ =
            done_payload e.Sekvm.Kernel_progs.name
              (Scheduler.run sched (Scheduler.Refine_spec e))
          in
          let remote = Codec.refine_of_json payload in
          let v =
            Vrm.Refinement.check ~config:e.Sekvm.Kernel_progs.rm_config
              e.Sekvm.Kernel_progs.prog
          in
          let local =
            Codec.refine_summary ~name:e.Sekvm.Kernel_progs.name
              e.Sekvm.Kernel_progs.prog v
          in
          let b = Fingerprint.behaviors in
          let n = e.Sekvm.Kernel_progs.name in
          Alcotest.(check bool) (n ^ " holds") local.Codec.r_holds
            remote.Codec.r_holds;
          if Codec.refine_served_by_static payload then begin
            (* The scheduler skipped exploration on the analyzer's word:
               legitimate only when the direct run indeed holds (checked
               above) and the payload carries no behavior sets. *)
            Alcotest.(check bool) (n ^ " static implies holds") true
              remote.Codec.r_holds;
            Alcotest.(check int) (n ^ " static payload is empty") 0
              (Behavior.cardinal remote.Codec.r_sc
              + Behavior.cardinal remote.Codec.r_rm)
          end
          else begin
            Alcotest.(check string) (n ^ " sc digest") (b local.Codec.r_sc)
              (b remote.Codec.r_sc);
            Alcotest.(check string) (n ^ " rm digest") (b local.Codec.r_rm)
              (b remote.Codec.r_rm);
            Alcotest.(check string) (n ^ " rm-only digest")
              (b local.Codec.r_rm_only)
              (b remote.Codec.r_rm_only)
          end)
        (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus
       @ Sekvm.Kernel_progs.lint_corpus))

(* ------------------------------------------------------------------ *)
(* Cache behavior through the scheduler                                *)
(* ------------------------------------------------------------------ *)

let test_warm_resubmit () =
  with_sched (fun sched ->
      let specs =
        List.map
          (fun (t : Litmus.t) -> Scheduler.Litmus_spec t)
          Paper_examples.all
      in
      let submit_all () =
        List.map
          (fun s -> Scheduler.await sched (Scheduler.submit sched s))
          specs
      in
      let cold = submit_all () in
      let c1 = Scheduler.counters sched in
      let warm = submit_all () in
      let c2 = Scheduler.counters sched in
      Alcotest.(check bool) "cold round explored" true
        (c1.Scheduler.engine.Engine.visited > 0);
      Alcotest.(check int) "warm round explored nothing"
        c1.Scheduler.engine.Engine.visited c2.Scheduler.engine.Engine.visited;
      Alcotest.(check int) "every warm job hit the hot tier"
        (List.length specs)
        c2.Scheduler.hot_stats.Hot.hot_hits;
      List.iter2
        (fun (o1, _) (o2, (m2 : Scheduler.meta)) ->
          match (o1, o2) with
          | Scheduler.Done p1, Scheduler.Done p2 ->
              Alcotest.(check string) "payload bit-identical"
                (Json.to_string p1) (Json.to_string p2);
              Alcotest.(check bool) "warm meta says cached" true
                m2.Scheduler.from_cache
          | _ -> Alcotest.fail "a job did not complete")
        cold warm)

let test_coalescing () =
  (* one worker + a slow filler job keeps the queue busy while two
     identical submissions arrive: they must share one ticket. *)
  with_sched ~workers:1 (fun sched ->
      let filler = Scheduler.Refine_spec Sekvm.Kernel_progs.mcs_handoff in
      let spec = Scheduler.Litmus_spec Paper_examples.example1 in
      let t0 = Scheduler.submit sched filler in
      let t1 = Scheduler.submit sched spec in
      let t2 = Scheduler.submit sched spec in
      ignore (Scheduler.await sched t0);
      let p1, _ = done_payload "first" (Scheduler.await sched t1) in
      let p2, _ = done_payload "second" (Scheduler.await sched t2) in
      Alcotest.(check string) "coalesced submissions agree"
        (Json.to_string p1) (Json.to_string p2);
      let c = Scheduler.counters sched in
      Alcotest.(check int) "one submission was coalesced" 1
        c.Scheduler.coalesced;
      (* the pair cost one execution: one miss+store for the litmus job,
         one for the filler *)
      Alcotest.(check int) "only two cache stores" 2
        c.Scheduler.cache_stats.Store.stores)

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let test_deadline_queue_level () =
  with_sched (fun sched ->
      match
        Scheduler.run sched ~deadline_s:0.
          (Scheduler.Certify_spec
             { Sekvm.Kernel_progs.linux = "5.5"; stage2_levels = 4 })
      with
      | Scheduler.Deadline_expired, _ -> ()
      | Scheduler.Done _, _ -> Alcotest.fail "expired job still ran"
      | _ -> Alcotest.fail "expired job misclassified");
  (* expiries are never cached: the same spec afterwards is a miss *)
  with_sched (fun sched ->
      let spec = Scheduler.Litmus_spec Paper_examples.example1 in
      (match Scheduler.run sched ~deadline_s:0. spec with
      | Scheduler.Deadline_expired, _ -> ()
      | _ -> Alcotest.fail "expected queue-level expiry");
      match Scheduler.run sched spec with
      | Scheduler.Done _, m ->
          Alcotest.(check bool) "post-expiry run recomputes" false
            m.Scheduler.from_cache
      | _ -> Alcotest.fail "post-expiry run did not complete")

let test_deadline_bulk_lane () =
  (* a bulk job whose deadline passes while it waits behind a long
     interactive job must come back [Deadline_expired], with zero
     exploration spent on it *)
  with_sched ~workers:1 (fun sched ->
      let filler =
        Scheduler.submit sched
          (Scheduler.Refine_spec Sekvm.Kernel_progs.mcs_handoff)
      in
      let doomed =
        Scheduler.submit sched ~lane:Protocol.Bulk ~deadline_s:0.
          (Scheduler.Litmus_spec Paper_examples.example1)
      in
      ignore (Scheduler.await sched filler);
      let visited_after_filler =
        (Scheduler.counters sched).Scheduler.engine.Engine.visited
      in
      (match Scheduler.await sched doomed with
      | Scheduler.Deadline_expired, _ -> ()
      | _ -> Alcotest.fail "queued bulk job did not expire");
      let c = Scheduler.counters sched in
      Alcotest.(check int) "expiry counted" 1 c.Scheduler.expired;
      Alcotest.(check int) "expired job explored nothing"
        visited_after_filler c.Scheduler.engine.Engine.visited;
      (* and it was never cached *)
      match
        Scheduler.run sched (Scheduler.Litmus_spec Paper_examples.example1)
      with
      | Scheduler.Done _, m ->
          Alcotest.(check bool) "expired job left no cache entry" false
            m.Scheduler.from_cache
      | _ -> Alcotest.fail "rerun did not complete")

let test_deadline_engine_level () =
  (* the engine's valve: an already-passed absolute deadline stops the
     exploration at its first state *)
  let prog = Paper_examples.example1.Litmus.prog in
  let _, stats =
    Sc.run_stats ~deadline:(Unix.gettimeofday () -. 1.) prog
  in
  Alcotest.(check bool) "expired deadline sets budget_hit" true
    stats.Engine.budget_hit;
  Alcotest.(check bool) "exploration was cut short" true
    (stats.Engine.visited <= 1);
  (* a generous deadline changes nothing *)
  let b_free, s_free = Sc.run_stats prog in
  let b_dl, s_dl =
    Sc.run_stats ~deadline:(Unix.gettimeofday () +. 3600.) prog
  in
  Alcotest.(check bool) "generous deadline: same behaviors" true
    (Behavior.equal b_free b_dl);
  Alcotest.(check bool) "generous deadline: no budget hit" true
    (not (s_free.Engine.budget_hit || s_dl.Engine.budget_hit))

(* ------------------------------------------------------------------ *)
(* Lanes and backpressure                                              *)
(* ------------------------------------------------------------------ *)

let test_lane_priority () =
  (* one worker, three bulk refine jobs queued behind a filler, then an
     interactive arrival: the interactive job must be served before the
     backlog — when it completes, at most one bulk job can have run. *)
  with_sched ~workers:1 (fun sched ->
      let _filler =
        Scheduler.submit sched
          (Scheduler.Refine_spec Sekvm.Kernel_progs.mcs_handoff)
      in
      let bulk_specs =
        [ Scheduler.Refine_spec Sekvm.Kernel_progs.vmid_alloc;
          Scheduler.Litmus_spec Paper_examples.example2_fixed;
          Scheduler.Litmus_spec Paper_examples.example3_fixed ]
      in
      let _bulk =
        List.map
          (fun s -> Scheduler.submit sched ~lane:Protocol.Bulk s)
          bulk_specs
      in
      let inter =
        Scheduler.submit sched (Scheduler.Litmus_spec Paper_examples.example1)
      in
      let _ = done_payload "interactive" (Scheduler.await sched inter) in
      let c = Scheduler.counters sched in
      (* completed so far: the filler, the interactive job, and at most
         one racing bulk job the worker may have started right after *)
      Alcotest.(check bool)
        "interactive overtook the bulk backlog" true
        (c.Scheduler.completed <= 3);
      Scheduler.drain sched;
      let c2 = Scheduler.counters sched in
      Alcotest.(check int) "backlog drains eventually" 5
        c2.Scheduler.completed)

let test_bulk_wakeup () =
  (* regression: with a reserved interactive worker (pool of two), a
     lone bulk submission must still be picked up — the enqueue wakeup
     has to reach a worker that is allowed to pop the bulk lane *)
  with_sched ~workers:2 (fun sched ->
      List.iter
        (fun (t : Litmus.t) ->
          let ticket =
            Scheduler.submit sched ~lane:Protocol.Bulk
              (Scheduler.Litmus_spec t)
          in
          ignore (done_payload "bulk-only" (Scheduler.await sched ticket)))
        [ Paper_examples.mp_plain; Paper_examples.sb ])

let test_shedding () =
  (* bulk lane bounded at 1: with the worker busy and one bulk job
     queued, the next distinct bulk submission is shed with a
     retry-after hint; coalesced resubmissions are never shed *)
  with_sched ~workers:1 ~bulk_depth:1 (fun sched ->
      let filler =
        Scheduler.submit sched
          (Scheduler.Refine_spec Sekvm.Kernel_progs.mcs_handoff)
      in
      let queued_spec = Scheduler.Litmus_spec Paper_examples.example1 in
      let queued =
        Scheduler.submit sched ~lane:Protocol.Bulk queued_spec
      in
      let shed =
        Scheduler.submit sched ~lane:Protocol.Bulk
          (Scheduler.Litmus_spec Paper_examples.example2_fixed)
      in
      (match Scheduler.await sched shed with
      | Scheduler.Overloaded { retry_after_s }, m ->
          Alcotest.(check bool) "retry-after is positive" true
            (retry_after_s > 0.);
          Alcotest.(check bool) "shed did not compute" false
            m.Scheduler.from_cache
      | _ -> Alcotest.fail "overfull bulk lane did not shed");
      (* resubmitting the queued job coalesces instead of shedding *)
      let again =
        Scheduler.submit sched ~lane:Protocol.Bulk queued_spec
      in
      (match Scheduler.await sched again with
      | Scheduler.Done _, _ -> ()
      | _ -> Alcotest.fail "coalesced resubmission was shed");
      ignore (Scheduler.await sched filler);
      ignore (Scheduler.await sched queued);
      let c = Scheduler.counters sched in
      Alcotest.(check int) "one bulk shed counted" 1
        c.Scheduler.bulk.Scheduler.lane_shed;
      Alcotest.(check int) "no interactive shed" 0
        c.Scheduler.interactive.Scheduler.lane_shed;
      Alcotest.(check int) "the resubmission coalesced" 1
        c.Scheduler.coalesced;
      (* shed outcomes are transient: the same spec re-submitted after
         capacity frees completes normally *)
      match
        Scheduler.run sched
          (Scheduler.Litmus_spec Paper_examples.example2_fixed)
      with
      | Scheduler.Done _, _ -> ()
      | _ -> Alcotest.fail "post-shed resubmission failed")

(* ------------------------------------------------------------------ *)
(* Hot-tier parity and durability                                      *)
(* ------------------------------------------------------------------ *)

let tmppath prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) (Random.int 100000))

let rm_rf d =
  (try
     Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
   with _ -> ());
  try Unix.rmdir d with _ -> ()

(* Two live executions of the same job agree on everything except the
   clock: scrub the wall-time (and other scheduling-dependent) stat
   fields so the comparison pins down exactly the verification content —
   digests, behavior sets, verdicts, deterministic exploration counts. *)
let rec scrub_volatile (j : Json.t) : Json.t =
  match j with
  | Json.Obj fields ->
      Json.Obj
        (List.map
           (fun (k, v) ->
             match k with
             | "wall_s" | "minor_words" | "lock_waits" | "tasks_stolen" ->
                 (k, Json.Null)
             | _ -> (k, scrub_volatile v))
           fields)
  | Json.List items -> Json.List (List.map scrub_volatile items)
  | other -> other

let test_hot_onoff_parity () =
  (* the acceptance criterion: result payloads are bit-identical with
     the hot tier on and off (modulo wall-clock stats) *)
  let specs =
    [ Scheduler.Litmus_spec Paper_examples.mp_plain;
      Scheduler.Litmus_spec Paper_examples.sb;
      Scheduler.Refine_spec Sekvm.Kernel_progs.vmid_alloc ]
  in
  let run_all ~hot =
    with_sched ~hot (fun sched ->
        List.map
          (fun s ->
            let p, _ = done_payload "parity" (Scheduler.run sched s) in
            Json.to_string (scrub_volatile p))
          specs)
  in
  List.iter2
    (Alcotest.(check string) "hot on/off payload bit-identical")
    (run_all ~hot:true) (run_all ~hot:false)

let test_journal_replay () =
  let dir = tmppath "vrmd-journal-cache" in
  let jpath = tmppath "vrmd-journal" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf dir;
      try Sys.remove jpath with _ -> ())
    (fun () ->
      let entry = Sekvm.Kernel_progs.vmid_alloc in
      let spec = Scheduler.Refine_spec entry in
      (* session 1 "crashes" with two pending jobs journaled: one
         healthy, one whose absolute deadline has already passed *)
      let j1, p1 = Journal.open_ jpath in
      Alcotest.(check int) "fresh journal is empty" 0 (List.length p1);
      Journal.record_add j1
        { Journal.e_key = Scheduler.cache_key spec;
          e_job = Scheduler.job_of_spec spec;
          e_jobs = 1;
          e_lane = Protocol.Bulk;
          e_deadline = None;
          e_backend = Protocol.Explicit;
          e_cert_cache = true;
          e_por = true;
          e_sym = true };
      let doomed_spec = Scheduler.Litmus_spec Paper_examples.example1 in
      Journal.record_add j1
        { Journal.e_key = Scheduler.cache_key doomed_spec;
          e_job = Scheduler.job_of_spec doomed_spec;
          e_jobs = 1;
          e_lane = Protocol.Bulk;
          e_deadline = Some (Unix.gettimeofday () -. 1.);
          e_backend = Protocol.Explicit;
          e_cert_cache = true;
          e_por = true;
          e_sym = true };
      Journal.close j1;
      (* restart: both jobs replay; the healthy one completes and the
         stale one is classified Deadline_expired, never run *)
      let j2, pending = Journal.open_ jpath in
      Alcotest.(check int) "both adds pending" 2 (List.length pending);
      let store = Store.create ~dir ~engine_version:Engine.version () in
      let replayed_payload =
        with_sched ~cache:store ~journal:j2 (fun sched ->
            Alcotest.(check int) "replayed both" 2
              (Scheduler.replay sched pending);
            Scheduler.drain sched;
            let c = Scheduler.counters sched in
            Alcotest.(check int) "stale replay expired, not run" 1
              c.Scheduler.expired;
            Alcotest.(check int) "healthy replay completed" 1
              c.Scheduler.completed;
            (* the replayed result is already cached *)
            let p, m = done_payload "replayed" (Scheduler.run sched spec) in
            Alcotest.(check bool) "replay populated the cache" true
              m.Scheduler.from_cache;
            Json.to_string p)
      in
      Journal.close j2;
      (* terminal states were journaled: nothing pending on reopen *)
      let j3, pending3 = Journal.open_ jpath in
      Journal.close j3;
      Alcotest.(check int) "journal forgot finished jobs" 0
        (List.length pending3);
      (* kill-and-restart digest parity: a fresh process over the same
         cache dir (hot tier cold, then disabled entirely) serves the
         byte-identical payload *)
      List.iter
        (fun hot ->
          let store2 = Store.create ~dir ~engine_version:Engine.version () in
          with_sched ~cache:store2 ~hot (fun sched2 ->
              let p2, m2 =
                done_payload "restart" (Scheduler.run sched2 spec)
              in
              Alcotest.(check bool) "restart served from disk" true
                m2.Scheduler.from_cache;
              Alcotest.(check string)
                "payload bit-identical across restart" replayed_payload
                (Json.to_string p2)))
        [ true; false ])

(* ------------------------------------------------------------------ *)
(* Framing and client resilience                                       *)
(* ------------------------------------------------------------------ *)

let test_frame_cap () =
  (* send side: a payload above max_frame is refused structurally *)
  let big = Json.String (String.make (Protocol.max_frame + 1) 'x') in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () ->
      (match Protocol.send a big with
      | exception Protocol.Frame_too_large _ -> ()
      | () -> Alcotest.fail "oversized send was not refused");
      (* recv side: a peer announcing an oversized frame is drained and
         rejected, and the connection keeps working afterwards *)
      let oversized = Protocol.max_frame + 5 in
      let writer =
        Thread.create
          (fun () ->
            let header = Bytes.create 4 in
            Bytes.set_int32_be header 0 (Int32.of_int oversized);
            ignore (Unix.write a header 0 4);
            let chunk = Bytes.make 65536 '.' in
            let rec push remaining =
              if remaining > 0 then
                let n = min remaining (Bytes.length chunk) in
                let w = Unix.write a chunk 0 n in
                push (remaining - w)
            in
            push oversized;
            (* then a well-formed frame on the same stream *)
            Protocol.send a (Json.Obj [ ("ok", Json.Bool true) ]))
          ()
      in
      (match Protocol.recv b with
      | exception Protocol.Frame_too_large n ->
          Alcotest.(check int) "reported oversize length" oversized n
      | _ -> Alcotest.fail "oversized frame accepted");
      (match Protocol.recv b with
      | Some j ->
          Alcotest.(check bool) "stream survives the oversized frame" true
            (Json.to_bool (Json.member "ok" j))
      | None -> Alcotest.fail "connection died after oversized frame"
      | exception e ->
          Alcotest.failf "stream desynced: %s" (Printexc.to_string e));
      Thread.join writer)

let test_client_retry () =
  let socket = tmppath "vrmd-retry" ^ ".sock" in
  (* no daemon, retries exhausted: the transient error surfaces *)
  (match Client.with_connection ~socket ~retries:1 (fun _ -> ()) with
  | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) -> ()
  | () -> Alcotest.fail "connected to a socket that does not exist"
  | exception e -> Alcotest.failf "unexpected error: %s" (Printexc.to_string e));
  (* mid-restart daemon: the socket appears only after the client's
     first attempt, so success proves the retry *)
  let server =
    Thread.create
      (fun () ->
        Thread.delay 0.1;
        let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind lfd (Unix.ADDR_UNIX socket);
        Unix.listen lfd 1;
        let fd, _ = Unix.accept lfd in
        Unix.close fd;
        Unix.close lfd)
      ()
  in
  let connected =
    Client.with_connection ~socket ~retries:3 (fun _ -> true)
  in
  Thread.join server;
  (try Sys.remove socket with _ -> ());
  Alcotest.(check bool) "retry reached the late-binding daemon" true
    connected

(* ------------------------------------------------------------------ *)
(* The daemon, end to end                                              *)
(* ------------------------------------------------------------------ *)

let test_server_end_to_end () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrmd-test-%d.sock" (Unix.getpid ()))
  in
  let cache = Store.create ~engine_version:Engine.version () in
  let sched = Scheduler.create ~workers:2 ~cache () in
  let server = Thread.create (fun () -> Server.serve ~socket sched) () in
  (* wait for the socket to appear *)
  let rec wait n =
    if n = 0 then Alcotest.fail "server did not come up";
    if not (Sys.file_exists socket) then (Thread.delay 0.05; wait (n - 1))
  in
  wait 100;
  (* submit one litmus job and check it against a direct run *)
  (match Client.submit ~socket (Protocol.Litmus "mp-plain") with
  | Error e -> Alcotest.failf "submit failed: %s" e
  | Ok payload ->
      let remote = Codec.litmus_of_json (Json.member "data" payload) in
      let local =
        Codec.litmus_summary (Litmus.run Paper_examples.mp_plain)
      in
      Alcotest.(check string) "socket parity: rm digest"
        (Fingerprint.behaviors local.Codec.l_rm)
        (Fingerprint.behaviors remote.Codec.l_rm));
  (* resubmission is served from cache *)
  (match Client.submit ~socket (Protocol.Litmus "mp-plain") with
  | Error e -> Alcotest.failf "resubmit failed: %s" e
  | Ok payload ->
      Alcotest.(check bool) "resubmit cached" true
        (Json.to_bool (Json.member "from_cache" payload)));
  (* unknown names are clean errors *)
  (match Client.submit ~socket (Protocol.Litmus "no-such-test") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown test accepted");
  (* status reports the three submissions *)
  (match Client.status ~socket with
  | Error e -> Alcotest.failf "status failed: %s" e
  | Ok counters ->
      Alcotest.(check int) "status: submitted" 2
        (Json.to_int (Json.member "submitted" counters)));
  (* graceful shutdown: server thread exits, socket file disappears *)
  (match Client.shutdown ~socket with
  | Error e -> Alcotest.failf "shutdown failed: %s" e
  | Ok () -> ());
  Thread.join server;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

let () =
  Alcotest.run "service"
    [ ( "parity",
        [ Alcotest.test_case "litmus corpus digests = direct runs" `Slow
            test_litmus_parity;
          Alcotest.test_case "kernel corpus digests = direct runs" `Slow
            test_refine_parity ] );
      ( "cache",
        [ Alcotest.test_case "corpus resubmit costs zero exploration" `Slow
            test_warm_resubmit;
          Alcotest.test_case "identical in-flight submissions coalesce"
            `Quick test_coalescing ] );
      ( "deadlines",
        [ Alcotest.test_case "expired jobs cancel without running" `Quick
            test_deadline_queue_level;
          Alcotest.test_case "bulk-lane queue expiry" `Quick
            test_deadline_bulk_lane;
          Alcotest.test_case "engine deadline valve" `Quick
            test_deadline_engine_level ] );
      ( "lanes",
        [ Alcotest.test_case "interactive overtakes a bulk backlog" `Quick
            test_lane_priority;
          Alcotest.test_case "bulk wakeup reaches an unreserved worker"
            `Quick test_bulk_wakeup;
          Alcotest.test_case "full lane sheds with retry-after" `Quick
            test_shedding ] );
      ( "durability",
        [ Alcotest.test_case "hot on/off payloads bit-identical" `Quick
            test_hot_onoff_parity;
          Alcotest.test_case "journal replay across a restart" `Quick
            test_journal_replay ] );
      ( "resilience",
        [ Alcotest.test_case "oversized frames are survivable" `Quick
            test_frame_cap;
          Alcotest.test_case "client retries a mid-restart daemon" `Quick
            test_client_retry ] );
      ( "daemon",
        [ Alcotest.test_case "serve/submit/status/shutdown over a socket"
            `Quick test_server_end_to_end ] ) ]
