(* The vrmd verification service:

   - parity: every corpus job submitted through the scheduler returns
     the same behavior-set digests as a direct Litmus.run /
     Refinement.check (the golden-digest acceptance criterion);
   - warm cache: resubmitting the corpus costs zero exploration;
   - coalescing: identical in-flight submissions share one execution;
   - deadlines: an already-expired job is cancelled without running, and
     the engine's deadline valve cuts short a running exploration;
   - the daemon end-to-end: serve over a real Unix socket, submit,
     status, graceful shutdown. *)

open Memmodel
open Cache
open Service

let with_sched ?(workers = 2) ?cache f =
  let cache =
    match cache with
    | Some c -> c
    | None -> Store.create ~engine_version:Engine.version ()
  in
  let sched = Scheduler.create ~workers ~cache () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) (fun () -> f sched)

let done_payload name = function
  | Scheduler.Done p, (m : Scheduler.meta) -> (p, m)
  | Scheduler.Timed_out, _ -> Alcotest.failf "%s timed out" name
  | Scheduler.Failed e, _ -> Alcotest.failf "%s failed: %s" name e

(* ------------------------------------------------------------------ *)
(* Parity with direct runs                                             *)
(* ------------------------------------------------------------------ *)

let test_litmus_parity () =
  with_sched (fun sched ->
      List.iter
        (fun (t : Litmus.t) ->
          let payload, _ =
            done_payload t.Litmus.prog.Prog.name
              (Scheduler.run sched (Scheduler.Litmus_spec t))
          in
          let remote = Codec.litmus_of_json payload in
          let local = Codec.litmus_summary (Litmus.run t) in
          let b = Fingerprint.behaviors in
          let n = t.Litmus.prog.Prog.name in
          Alcotest.(check string) (n ^ " prog digest")
            local.Codec.l_prog_digest remote.Codec.l_prog_digest;
          Alcotest.(check string) (n ^ " sc digest") (b local.Codec.l_sc)
            (b remote.Codec.l_sc);
          Alcotest.(check string) (n ^ " rm digest") (b local.Codec.l_rm)
            (b remote.Codec.l_rm);
          Alcotest.(check string) (n ^ " rm-only digest")
            (b local.Codec.l_rm_only)
            (b remote.Codec.l_rm_only);
          Alcotest.(check bool) (n ^ " as_expected")
            local.Codec.l_as_expected remote.Codec.l_as_expected)
        Paper_examples.all)

let test_refine_parity () =
  with_sched (fun sched ->
      List.iter
        (fun (e : Sekvm.Kernel_progs.entry) ->
          let payload, _ =
            done_payload e.Sekvm.Kernel_progs.name
              (Scheduler.run sched (Scheduler.Refine_spec e))
          in
          let remote = Codec.refine_of_json payload in
          let v =
            Vrm.Refinement.check ~config:e.Sekvm.Kernel_progs.rm_config
              e.Sekvm.Kernel_progs.prog
          in
          let local =
            Codec.refine_summary ~name:e.Sekvm.Kernel_progs.name
              e.Sekvm.Kernel_progs.prog v
          in
          let b = Fingerprint.behaviors in
          let n = e.Sekvm.Kernel_progs.name in
          Alcotest.(check bool) (n ^ " holds") local.Codec.r_holds
            remote.Codec.r_holds;
          if Codec.refine_served_by_static payload then begin
            (* The scheduler skipped exploration on the analyzer's word:
               legitimate only when the direct run indeed holds (checked
               above) and the payload carries no behavior sets. *)
            Alcotest.(check bool) (n ^ " static implies holds") true
              remote.Codec.r_holds;
            Alcotest.(check int) (n ^ " static payload is empty") 0
              (Behavior.cardinal remote.Codec.r_sc
              + Behavior.cardinal remote.Codec.r_rm)
          end
          else begin
            Alcotest.(check string) (n ^ " sc digest") (b local.Codec.r_sc)
              (b remote.Codec.r_sc);
            Alcotest.(check string) (n ^ " rm digest") (b local.Codec.r_rm)
              (b remote.Codec.r_rm);
            Alcotest.(check string) (n ^ " rm-only digest")
              (b local.Codec.r_rm_only)
              (b remote.Codec.r_rm_only)
          end)
        (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus
       @ Sekvm.Kernel_progs.lint_corpus))

(* ------------------------------------------------------------------ *)
(* Cache behavior through the scheduler                                *)
(* ------------------------------------------------------------------ *)

let test_warm_resubmit () =
  with_sched (fun sched ->
      let specs =
        List.map
          (fun (t : Litmus.t) -> Scheduler.Litmus_spec t)
          Paper_examples.all
      in
      let submit_all () =
        List.map
          (fun s -> Scheduler.await sched (Scheduler.submit sched s))
          specs
      in
      let cold = submit_all () in
      let c1 = Scheduler.counters sched in
      let warm = submit_all () in
      let c2 = Scheduler.counters sched in
      Alcotest.(check bool) "cold round explored" true
        (c1.Scheduler.engine.Engine.visited > 0);
      Alcotest.(check int) "warm round explored nothing"
        c1.Scheduler.engine.Engine.visited c2.Scheduler.engine.Engine.visited;
      Alcotest.(check int) "every warm job hit the cache"
        (List.length specs)
        c2.Scheduler.cache_stats.Store.hits;
      List.iter2
        (fun (o1, _) (o2, (m2 : Scheduler.meta)) ->
          match (o1, o2) with
          | Scheduler.Done p1, Scheduler.Done p2 ->
              Alcotest.(check string) "payload bit-identical"
                (Json.to_string p1) (Json.to_string p2);
              Alcotest.(check bool) "warm meta says cached" true
                m2.Scheduler.from_cache
          | _ -> Alcotest.fail "a job did not complete")
        cold warm)

let test_coalescing () =
  (* one worker + a slow filler job keeps the queue busy while two
     identical submissions arrive: they must share one ticket. *)
  with_sched ~workers:1 (fun sched ->
      let filler = Scheduler.Refine_spec Sekvm.Kernel_progs.mcs_handoff in
      let spec = Scheduler.Litmus_spec Paper_examples.example1 in
      let t0 = Scheduler.submit sched filler in
      let t1 = Scheduler.submit sched spec in
      let t2 = Scheduler.submit sched spec in
      ignore (Scheduler.await sched t0);
      let p1, _ = done_payload "first" (Scheduler.await sched t1) in
      let p2, _ = done_payload "second" (Scheduler.await sched t2) in
      Alcotest.(check string) "coalesced submissions agree"
        (Json.to_string p1) (Json.to_string p2);
      let c = Scheduler.counters sched in
      Alcotest.(check int) "one submission was coalesced" 1
        c.Scheduler.coalesced;
      (* the pair cost one execution: one miss+store for the litmus job,
         one for the filler *)
      Alcotest.(check int) "only two cache stores" 2
        c.Scheduler.cache_stats.Store.stores)

(* ------------------------------------------------------------------ *)
(* Deadlines                                                           *)
(* ------------------------------------------------------------------ *)

let test_deadline_queue_level () =
  with_sched (fun sched ->
      match
        Scheduler.run sched ~deadline_s:0.
          (Scheduler.Certify_spec
             { Sekvm.Kernel_progs.linux = "5.5"; stage2_levels = 4 })
      with
      | Scheduler.Timed_out, _ -> ()
      | Scheduler.Done _, _ -> Alcotest.fail "expired job still ran"
      | Scheduler.Failed e, _ -> Alcotest.failf "expired job failed: %s" e);
  (* timeouts are never cached: the same spec afterwards is a miss *)
  with_sched (fun sched ->
      let spec = Scheduler.Litmus_spec Paper_examples.example1 in
      (match Scheduler.run sched ~deadline_s:0. spec with
      | Scheduler.Timed_out, _ -> ()
      | _ -> Alcotest.fail "expected queue-level timeout");
      match Scheduler.run sched spec with
      | Scheduler.Done _, m ->
          Alcotest.(check bool) "post-timeout run recomputes" false
            m.Scheduler.from_cache
      | _ -> Alcotest.fail "post-timeout run did not complete")

let test_deadline_engine_level () =
  (* the engine's valve: an already-passed absolute deadline stops the
     exploration at its first state *)
  let prog = Paper_examples.example1.Litmus.prog in
  let _, stats =
    Sc.run_stats ~deadline:(Unix.gettimeofday () -. 1.) prog
  in
  Alcotest.(check bool) "expired deadline sets budget_hit" true
    stats.Engine.budget_hit;
  Alcotest.(check bool) "exploration was cut short" true
    (stats.Engine.visited <= 1);
  (* a generous deadline changes nothing *)
  let b_free, s_free = Sc.run_stats prog in
  let b_dl, s_dl =
    Sc.run_stats ~deadline:(Unix.gettimeofday () +. 3600.) prog
  in
  Alcotest.(check bool) "generous deadline: same behaviors" true
    (Behavior.equal b_free b_dl);
  Alcotest.(check bool) "generous deadline: no budget hit" true
    (not (s_free.Engine.budget_hit || s_dl.Engine.budget_hit))

(* ------------------------------------------------------------------ *)
(* The daemon, end to end                                              *)
(* ------------------------------------------------------------------ *)

let test_server_end_to_end () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrmd-test-%d.sock" (Unix.getpid ()))
  in
  let cache = Store.create ~engine_version:Engine.version () in
  let sched = Scheduler.create ~workers:2 ~cache () in
  let server = Thread.create (fun () -> Server.serve ~socket sched) () in
  (* wait for the socket to appear *)
  let rec wait n =
    if n = 0 then Alcotest.fail "server did not come up";
    if not (Sys.file_exists socket) then (Thread.delay 0.05; wait (n - 1))
  in
  wait 100;
  (* submit one litmus job and check it against a direct run *)
  (match Client.submit ~socket (Protocol.Litmus "mp-plain") with
  | Error e -> Alcotest.failf "submit failed: %s" e
  | Ok payload ->
      let remote = Codec.litmus_of_json (Json.member "data" payload) in
      let local =
        Codec.litmus_summary (Litmus.run Paper_examples.mp_plain)
      in
      Alcotest.(check string) "socket parity: rm digest"
        (Fingerprint.behaviors local.Codec.l_rm)
        (Fingerprint.behaviors remote.Codec.l_rm));
  (* resubmission is served from cache *)
  (match Client.submit ~socket (Protocol.Litmus "mp-plain") with
  | Error e -> Alcotest.failf "resubmit failed: %s" e
  | Ok payload ->
      Alcotest.(check bool) "resubmit cached" true
        (Json.to_bool (Json.member "from_cache" payload)));
  (* unknown names are clean errors *)
  (match Client.submit ~socket (Protocol.Litmus "no-such-test") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown test accepted");
  (* status reports the three submissions *)
  (match Client.status ~socket with
  | Error e -> Alcotest.failf "status failed: %s" e
  | Ok counters ->
      Alcotest.(check int) "status: submitted" 2
        (Json.to_int (Json.member "submitted" counters)));
  (* graceful shutdown: server thread exits, socket file disappears *)
  (match Client.shutdown ~socket with
  | Error e -> Alcotest.failf "shutdown failed: %s" e
  | Ok () -> ());
  Thread.join server;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

let () =
  Alcotest.run "service"
    [ ( "parity",
        [ Alcotest.test_case "litmus corpus digests = direct runs" `Slow
            test_litmus_parity;
          Alcotest.test_case "kernel corpus digests = direct runs" `Slow
            test_refine_parity ] );
      ( "cache",
        [ Alcotest.test_case "corpus resubmit costs zero exploration" `Slow
            test_warm_resubmit;
          Alcotest.test_case "identical in-flight submissions coalesce"
            `Quick test_coalescing ] );
      ( "deadlines",
        [ Alcotest.test_case "expired jobs cancel without running" `Quick
            test_deadline_queue_level;
          Alcotest.test_case "engine deadline valve" `Quick
            test_deadline_engine_level ] );
      ( "daemon",
        [ Alcotest.test_case "serve/submit/status/shutdown over a socket"
            `Quick test_server_end_to_end ] ) ]
