(* The static wDRF analyzer: cross-validation against the dynamic
   checkers, deterministic diagnostics, golden renderings of the text
   and JSON outputs (one per verdict: pass / fail / unknown), and the
   bounded-vs-fixpoint engine contract. *)

open Analysis
open Sekvm

let test_cross_validation () =
  let reports = Validate.corpus () in
  List.iter
    (fun r ->
      if not (Validate.ok r) then
        Format.printf "%a@." Validate.pp_report r)
    reports;
  Alcotest.(check bool) "static and dynamic checkers agree" true
    (Validate.all_ok reports)

let all_entries () =
  Kernel_progs.corpus @ Kernel_progs.buggy_corpus
  @ Kernel_progs.boundary_corpus @ Kernel_progs.lint_corpus

(* Diagnostics come out in Diag.compare order, identically on repeated
   runs: the CLI output and the goldens below depend on it. *)
let test_deterministic_diags () =
  List.iter
    (fun (e : Kernel_progs.entry) ->
      let a = Driver.analyze e and b = Driver.analyze e in
      Alcotest.(check bool)
        (e.Kernel_progs.name ^ " reproducible")
        true
        (Driver.diags a = Driver.diags b);
      let ds = Driver.diags a in
      Alcotest.(check bool)
        (e.Kernel_progs.name ^ " sorted")
        true
        (ds = Diag.sort ds))
    (all_entries ())

(* Only programs the analyzer fully discharges — overall AND refinement
   Pass — may skip exploration; pinning the set keeps the service's
   static-serve decision visible in review. *)
let test_static_serve_set () =
  let served =
    List.filter_map
      (fun (e : Kernel_progs.entry) ->
        let a = Driver.analyze e in
        if
          a.Driver.a_overall = Diag.Pass
          && a.Driver.a_refinement = Diag.Pass
        then Some e.Kernel_progs.name
        else None)
      (all_entries ())
  in
  Alcotest.(check (list string))
    "statically dischargeable entries"
    [ "gen_vmid"; "vm-boot-state"; "share-page"; "mcs-counter" ]
    served

let test_program_summary () =
  let a = Driver.analyze Kernel_progs.vmid_alloc in
  (match
     Driver.to_program_summary
       ~expect:Kernel_progs.vmid_alloc.Kernel_progs.expect a
   with
  | None -> Alcotest.fail "gen_vmid should summarize"
  | Some ps ->
      Alcotest.(check bool) "all green" true
        (ps.Vrm.Certificate.ps_drf && ps.Vrm.Certificate.ps_barrier
        && ps.Vrm.Certificate.ps_refine
        && ps.Vrm.Certificate.ps_as_expected));
  let u = Driver.analyze Kernel_progs.walker_no_isb in
  Alcotest.(check bool) "unknown entries do not summarize" true
    (Driver.to_program_summary
       ~expect:Kernel_progs.walker_no_isb.Kernel_progs.expect u
    = None)

(* --- engines ------------------------------------------------------- *)

let vrank = function Diag.Pass -> 0 | Diag.Unknown -> 1 | Diag.Fail -> 2

(* The designated bounded blind spot: a loop-carried double map that
   only manifests on the second iteration. The fixpoint engine pins it
   Definite; the bounded engine's 0/1 unrolling never sees it. *)
let test_loop_carried () =
  let e = Kernel_progs.el2_loop_remap in
  let fx = Driver.analyze ~engine:Driver.Fixpoint e in
  Alcotest.(check (list string))
    "fixpoint pins W003" [ "W003" ] (Driver.definite_codes fx);
  Alcotest.(check string) "fixpoint write-once fails" "fail"
    (Diag.verdict_name (Driver.pass_verdict fx "write-once"));
  let bd = Driver.analyze ~engine:Driver.Bounded e in
  Alcotest.(check (list string))
    "bounded is blind" [] (Driver.definite_codes bd);
  Alcotest.(check string) "bounded write-once passes" "pass"
    (Diag.verdict_name (Driver.pass_verdict bd "write-once"))

(* Per-pass verdict agreement across every corpus entry, modulo the
   pinned divergences (where fixpoint may only be more severe). *)
let test_engine_parity_corpus () =
  List.iter
    (fun (e : Kernel_progs.entry) ->
      let fx = Driver.analyze ~engine:Driver.Fixpoint e in
      let bd = Driver.analyze ~engine:Driver.Bounded e in
      let pinned =
        Option.value ~default:[]
          (List.assoc_opt e.Kernel_progs.name Kernel_progs.lint_divergences)
      in
      List.iter
        (fun (p : Driver.pass) ->
          let vb = Driver.pass_verdict bd p.Driver.p_name in
          let label = e.Kernel_progs.name ^ "/" ^ p.Driver.p_name in
          if List.mem p.Driver.p_name pinned then
            Alcotest.(check bool)
              (label ^ " pinned: fixpoint at least as severe")
              true
              (vrank p.Driver.p_verdict >= vrank vb)
          else
            Alcotest.(check string) label (Diag.verdict_name vb)
              (Diag.verdict_name p.Driver.p_verdict))
        fx.Driver.a_passes)
    (all_entries ())

(* Fixpoint passes carry solver statistics; structural passes and the
   bounded engine stay at zero. *)
let test_stats () =
  let fx = Driver.analyze ~engine:Driver.Fixpoint Kernel_progs.vmid_alloc in
  let lockset =
    List.find (fun (p : Driver.pass) -> p.Driver.p_name = "drf-lockset")
      fx.Driver.a_passes
  in
  Alcotest.(check bool) "nodes counted" true
    (lockset.Driver.p_stats.Absint.st_nodes > 0);
  Alcotest.(check bool) "edges counted" true
    (lockset.Driver.p_stats.Absint.st_edges > 0);
  Alcotest.(check bool) "solver iterated" true
    (lockset.Driver.p_stats.Absint.st_iters > 0);
  Alcotest.(check bool) "wall time non-negative" true
    (List.for_all (fun (p : Driver.pass) -> p.Driver.p_ms >= 0.)
       fx.Driver.a_passes);
  let bd = Driver.analyze ~engine:Driver.Bounded Kernel_progs.vmid_alloc in
  Alcotest.(check bool) "bounded stats are zero" true
    (List.for_all
       (fun (p : Driver.pass) -> p.Driver.p_stats = Absint.zero_stats)
       bd.Driver.a_passes)

(* --- randomized engine parity -------------------------------------- *)

(* A small deterministic PRNG so failures reproduce from the seed. *)
module Rng = struct
  type t = { mutable s : int }

  let create seed = { s = (seed * 2 + 1) land 0x3fffffff }

  let next t =
    t.s <- (t.s * 1103515245 + 12345) land 0x3fffffff;
    t.s

  let below t n = next t mod n
end

(* Random two-thread DSL programs for the engine-parity properties.
   Guards branch only on freshly loaded registers (statically opaque, so
   both engines face the same control-flow uncertainty), pulls and
   pushes are always matched, and every EL2 store writes the same
   constant, so joining branch states never invents a value conflict the
   bounded enumeration cannot see. *)
let gen_code rng ~loops tid =
  let open Memmodel in
  let fresh = ref 0 in
  let reg () =
    incr fresh;
    Reg.v (Printf.sprintf "t%d_r%d" tid !fresh)
  in
  let rec block depth len =
    List.concat (List.init len (fun _ -> instr depth))
  and instr depth =
    match Rng.below rng (if depth > 0 then 9 else 7) with
    | 0 ->
        let o = if Rng.below rng 2 = 0 then Instr.Plain else Instr.Acquire in
        [ Instr.load ~order:o (reg ()) (Expr.at "data") ]
    | 1 -> [ Instr.store (Expr.at "data") (Expr.c (1 + Rng.below rng 2)) ]
    | 2 ->
        [ Instr.store
            (Expr.at ~offset:(Expr.c (Rng.below rng 2)) "el2_m")
            (Expr.c 1) ]
    | 3 ->
        [ (match Rng.below rng 3 with
          | 0 -> Instr.dmb
          | 1 -> Instr.dmb_ld
          | _ -> Instr.dmb_st) ]
    | 4 ->
        (Instr.pull [ "data" ] :: block 0 (1 + Rng.below rng 2))
        @ [ Instr.push [ "data" ] ]
    | 5 -> [ Instr.store_rel (Expr.at "data") (Expr.c 1) ]
    | 6 -> [ Instr.Nop ]
    | n ->
        let g = reg () in
        let cond = Expr.Cmp (Expr.Eq, Expr.r g, Expr.c 0) in
        let sub () = block (depth - 1) (1 + Rng.below rng 2) in
        if n = 8 && loops then
          [ Instr.load g (Expr.at "data"); Instr.while_ cond (sub ()) ]
        else
          [ Instr.load g (Expr.at "data");
            Instr.if_ cond (sub ()) (sub ()) ]
  in
  block 2 (3 + Rng.below rng 3)

let gen_prog ~loops seed =
  let open Memmodel in
  let rng = Rng.create seed in
  Prog.make ~name:"lint-qcheck" ~observables:[]
    ~shared_bases:[ "data"; "el2_m" ]
    [ Prog.thread 1 (gen_code rng ~loops 1);
      Prog.thread 2 (gen_code rng ~loops 2) ]

let definite_diags a =
  List.filter
    (fun (d : Diag.t) -> d.Diag.d_certainty = Diag.Definite)
    (Driver.diags a)

let parity_seed ~loops seed =
  let prog = gen_prog ~loops seed in
  let fx =
    Driver.analyze_prog ~engine:Driver.Fixpoint ~name:"lint-qcheck" prog
  in
  let bd =
    Driver.analyze_prog ~engine:Driver.Bounded ~name:"lint-qcheck" prog
  in
  (* soundness: every bounded Definite diagnostic survives verbatim *)
  let dfx = definite_diags fx in
  let missing =
    List.filter (fun d -> not (List.mem d dfx)) (definite_diags bd)
  in
  if missing <> [] then (
    Format.eprintf "seed %d: fixpoint lost definite diags:@." seed;
    List.iter (fun d -> Format.eprintf "  %a@." Diag.pp d) missing;
    false)
  else if
    (* loop-free programs: the engines must agree pass by pass *)
    (not loops)
    && List.exists
         (fun (p : Driver.pass) ->
           Driver.pass_verdict bd p.Driver.p_name <> p.Driver.p_verdict)
         fx.Driver.a_passes
  then (
    Format.eprintf "seed %d: loop-free verdict divergence@.%a@.%a@." seed
      Driver.pp bd Driver.pp fx;
    false)
  else true

let qcheck_parity_loopfree =
  QCheck.Test.make
    ~name:"loop-free programs: engines agree pass by pass" ~count:60
    QCheck.(int_bound 100_000)
    (parity_seed ~loops:false)

let qcheck_parity_loops =
  QCheck.Test.make
    ~name:"loopy programs: fixpoint keeps every bounded definite"
    ~count:60
    QCheck.(int_bound 100_000)
    (parity_seed ~loops:true)

(* --- goldens ------------------------------------------------------- *)

let render e = Format.asprintf "%a" Driver.pp (Driver.analyze e)
let render_json e = Cache.Json.to_string (Driver.to_json (Driver.analyze e))

let golden_pass_text =
  "lint gen_vmid: pass (refinement pass)\n\
  \  drf-lockset   pass\n\
  \  barriers      pass\n\
  \  write-once    pass\n\
  \  transactional pass\n\
  \  tlbi          pass\n\
  \  ownership     pass\n\
  \  delay         pass"

let golden_fail_text =
  "lint el2-double-map: fail (refinement pass)\n\
  \  drf-lockset   pass\n\
  \  barriers      pass\n\
  \  write-once    fail\n\
  \    W003 [definite] tid 1 @ 1: kernel mapping el2_pt[0] overwritten \
   outside a transactional section\n\
  \        fix: install each kernel mapping exactly once, or wrap the \
   remap in a pull/push section\n\
  \  transactional pass\n\
  \  tlbi          pass\n\
  \  ownership     pass\n\
  \  delay         pass"

let golden_unknown_text =
  "lint walker-no-isb: unknown (refinement unknown)\n\
  \  drf-lockset   pass\n\
  \  barriers      unknown\n\
  \    W007 [possible] tid 1 @ 1: branch on a value read from a page \
   table is followed by loads with no ISB: the control dependency alone \
   does not order them\n\
  \        fix: insert `isb` between the page-table read and the \
   dependent loads\n\
  \  write-once    pass\n\
  \  transactional pass\n\
  \  tlbi          pass\n\
  \  ownership     pass\n\
  \  delay         pass"

let golden_fail_json =
  "{\"kind\":\"lint\",\"name\":\"el2-double-map\",\"prog_digest\":\"419295c9c9093fa79a9f6e594fdbc0cd\",\"analyzer\":\"lint-2\",\"engine\":\"fixpoint\",\"overall\":\"fail\",\"refinement\":\"pass\",\"passes\":[{\"name\":\"drf-lockset\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"barriers\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"write-once\",\"verdict\":\"fail\",\"diags\":[{\"code\":\"W003\",\"tid\":1,\"path\":[1],\"certainty\":\"definite\",\"message\":\"kernel mapping el2_pt[0] overwritten outside a transactional section\",\"fix\":\"install each kernel mapping exactly once, or wrap the remap in a pull/push section\"}]},{\"name\":\"transactional\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"tlbi\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"ownership\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"delay\",\"verdict\":\"pass\",\"diags\":[]}]}"

let test_golden_text () =
  Alcotest.(check string) "pass text" golden_pass_text
    (render Kernel_progs.vmid_alloc);
  Alcotest.(check string) "fail text" golden_fail_text
    (render Kernel_progs.el2_double_map);
  Alcotest.(check string) "unknown text" golden_unknown_text
    (render Kernel_progs.walker_no_isb)

let test_golden_json () =
  Alcotest.(check string) "fail json" golden_fail_json
    (render_json Kernel_progs.el2_double_map);
  (* the JSON output round-trips through the strict parser *)
  List.iter
    (fun (e : Kernel_progs.entry) ->
      let s = render_json e in
      match Cache.Json.of_string s with
      | Error m -> Alcotest.fail (e.Kernel_progs.name ^ ": " ^ m)
      | Ok j ->
          Alcotest.(check string)
            (e.Kernel_progs.name ^ " kind")
            "lint"
            Cache.Json.(to_str (member "kind" j));
          Alcotest.(check string)
            (e.Kernel_progs.name ^ " reencode")
            s
            (Cache.Json.to_string j))
    (all_entries ())

let () =
  Alcotest.run "analysis"
    [ ( "validate",
        [ Alcotest.test_case "cross-validation" `Quick test_cross_validation ]
      );
      ( "diags",
        [ Alcotest.test_case "deterministic order" `Quick
            test_deterministic_diags;
          Alcotest.test_case "static-serve set" `Quick test_static_serve_set;
          Alcotest.test_case "program summary" `Quick test_program_summary ]
      );
      ( "engines",
        [ Alcotest.test_case "loop-carried W003" `Quick test_loop_carried;
          Alcotest.test_case "corpus parity" `Quick
            test_engine_parity_corpus;
          Alcotest.test_case "solver stats" `Quick test_stats;
          QCheck_alcotest.to_alcotest qcheck_parity_loopfree;
          QCheck_alcotest.to_alcotest qcheck_parity_loops ] );
      ( "golden",
        [ Alcotest.test_case "text" `Quick test_golden_text;
          Alcotest.test_case "json" `Quick test_golden_json ] ) ]
