(* The static wDRF analyzer: cross-validation against the dynamic
   checkers, deterministic diagnostics, and golden renderings of the
   text and JSON outputs (one per verdict: pass / fail / unknown). *)

open Analysis
open Sekvm

let test_cross_validation () =
  let reports = Validate.corpus () in
  List.iter
    (fun r ->
      if not (Validate.ok r) then
        Format.printf "%a@." Validate.pp_report r)
    reports;
  Alcotest.(check bool) "static and dynamic checkers agree" true
    (Validate.all_ok reports)

let all_entries () =
  Kernel_progs.corpus @ Kernel_progs.buggy_corpus
  @ Kernel_progs.boundary_corpus @ Kernel_progs.lint_corpus

(* Diagnostics come out in Diag.compare order, identically on repeated
   runs: the CLI output and the goldens below depend on it. *)
let test_deterministic_diags () =
  List.iter
    (fun (e : Kernel_progs.entry) ->
      let a = Driver.analyze e and b = Driver.analyze e in
      Alcotest.(check bool)
        (e.Kernel_progs.name ^ " reproducible")
        true
        (Driver.diags a = Driver.diags b);
      let ds = Driver.diags a in
      Alcotest.(check bool)
        (e.Kernel_progs.name ^ " sorted")
        true
        (ds = Diag.sort ds))
    (all_entries ())

(* Only programs the analyzer fully discharges — overall AND refinement
   Pass — may skip exploration; pinning the set keeps the service's
   static-serve decision visible in review. *)
let test_static_serve_set () =
  let served =
    List.filter_map
      (fun (e : Kernel_progs.entry) ->
        let a = Driver.analyze e in
        if
          a.Driver.a_overall = Diag.Pass
          && a.Driver.a_refinement = Diag.Pass
        then Some e.Kernel_progs.name
        else None)
      (all_entries ())
  in
  Alcotest.(check (list string))
    "statically dischargeable entries"
    [ "gen_vmid"; "vm-boot-state"; "share-page"; "mcs-counter" ]
    served

let test_program_summary () =
  let a = Driver.analyze Kernel_progs.vmid_alloc in
  (match
     Driver.to_program_summary
       ~expect:Kernel_progs.vmid_alloc.Kernel_progs.expect a
   with
  | None -> Alcotest.fail "gen_vmid should summarize"
  | Some ps ->
      Alcotest.(check bool) "all green" true
        (ps.Vrm.Certificate.ps_drf && ps.Vrm.Certificate.ps_barrier
        && ps.Vrm.Certificate.ps_refine
        && ps.Vrm.Certificate.ps_as_expected));
  let u = Driver.analyze Kernel_progs.walker_no_isb in
  Alcotest.(check bool) "unknown entries do not summarize" true
    (Driver.to_program_summary
       ~expect:Kernel_progs.walker_no_isb.Kernel_progs.expect u
    = None)

(* --- goldens ------------------------------------------------------- *)

let render e = Format.asprintf "%a" Driver.pp (Driver.analyze e)
let render_json e = Cache.Json.to_string (Driver.to_json (Driver.analyze e))

let golden_pass_text =
  "lint gen_vmid: pass (refinement pass)\n\
  \  drf-lockset   pass\n\
  \  barriers      pass\n\
  \  write-once    pass\n\
  \  transactional pass\n\
  \  tlbi          pass\n\
  \  ownership     pass"

let golden_fail_text =
  "lint el2-double-map: fail (refinement pass)\n\
  \  drf-lockset   pass\n\
  \  barriers      pass\n\
  \  write-once    fail\n\
  \    W003 [definite] tid 1 @ 1: kernel mapping el2_pt[0] overwritten \
   outside a transactional section\n\
  \        fix: install each kernel mapping exactly once, or wrap the \
   remap in a pull/push section\n\
  \  transactional pass\n\
  \  tlbi          pass\n\
  \  ownership     pass"

let golden_unknown_text =
  "lint walker-no-isb: unknown (refinement unknown)\n\
  \  drf-lockset   pass\n\
  \  barriers      unknown\n\
  \    W007 [possible] tid 1 @ 1: branch on a value read from a page \
   table is followed by loads with no ISB: the control dependency alone \
   does not order them\n\
  \        fix: insert `isb` between the page-table read and the \
   dependent loads\n\
  \  write-once    pass\n\
  \  transactional pass\n\
  \  tlbi          pass\n\
  \  ownership     pass"

let golden_fail_json =
  "{\"kind\":\"lint\",\"name\":\"el2-double-map\",\"prog_digest\":\"419295c9c9093fa79a9f6e594fdbc0cd\",\"analyzer\":\"lint-1\",\"overall\":\"fail\",\"refinement\":\"pass\",\"passes\":[{\"name\":\"drf-lockset\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"barriers\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"write-once\",\"verdict\":\"fail\",\"diags\":[{\"code\":\"W003\",\"tid\":1,\"path\":[1],\"certainty\":\"definite\",\"message\":\"kernel mapping el2_pt[0] overwritten outside a transactional section\",\"fix\":\"install each kernel mapping exactly once, or wrap the remap in a pull/push section\"}]},{\"name\":\"transactional\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"tlbi\",\"verdict\":\"pass\",\"diags\":[]},{\"name\":\"ownership\",\"verdict\":\"pass\",\"diags\":[]}]}"

let test_golden_text () =
  Alcotest.(check string) "pass text" golden_pass_text
    (render Kernel_progs.vmid_alloc);
  Alcotest.(check string) "fail text" golden_fail_text
    (render Kernel_progs.el2_double_map);
  Alcotest.(check string) "unknown text" golden_unknown_text
    (render Kernel_progs.walker_no_isb)

let test_golden_json () =
  Alcotest.(check string) "fail json" golden_fail_json
    (render_json Kernel_progs.el2_double_map);
  (* the JSON output round-trips through the strict parser *)
  List.iter
    (fun (e : Kernel_progs.entry) ->
      let s = render_json e in
      match Cache.Json.of_string s with
      | Error m -> Alcotest.fail (e.Kernel_progs.name ^ ": " ^ m)
      | Ok j ->
          Alcotest.(check string)
            (e.Kernel_progs.name ^ " kind")
            "lint"
            Cache.Json.(to_str (member "kind" j));
          Alcotest.(check string)
            (e.Kernel_progs.name ^ " reencode")
            s
            (Cache.Json.to_string j))
    (all_entries ())

let () =
  Alcotest.run "analysis"
    [ ( "validate",
        [ Alcotest.test_case "cross-validation" `Quick test_cross_validation ]
      );
      ( "diags",
        [ Alcotest.test_case "deterministic order" `Quick
            test_deterministic_diags;
          Alcotest.test_case "static-serve set" `Quick test_static_serve_set;
          Alcotest.test_case "program summary" `Quick test_program_summary ]
      );
      ( "golden",
        [ Alcotest.test_case "text" `Quick test_golden_text;
          Alcotest.test_case "json" `Quick test_golden_json ] ) ]
