(* Golden-parity tests for the shared exploration engine (Engine.Make).

   The digests below were captured from the pre-engine executors — each
   model ran its own private DFS+memoization loop — immediately before
   the refactor onto [Engine]. The engine-based executors must reproduce
   every behavior set bit-identically (digest of the canonical
   [Behavior.pp] rendering), including the exact ownership violation the
   push/pull checker reports first. The remaining tests check that
   parallel search ([~jobs]) returns the sequential behavior sets and
   that the exploration statistics are sane. *)

open Memmodel

let digest_behaviors (b : Behavior.t) : string =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Behavior.pp b))

(* (model, program, expected) — captured from the seed executors *)
let golden =
  [
    ("sc", "example1-ooo-write", "99e322099b2c53283986b87c0a014695");
    ("tso", "example1-ooo-write", "99e322099b2c53283986b87c0a014695");
    ("promising", "example1-ooo-write", "2b4469770ae30fca187483d89d7ba355");
    ("sc", "example2-vmid-nobarrier", "cc50367be32898f6e26a850b0a8ccc59");
    ("tso", "example2-vmid-nobarrier", "cc50367be32898f6e26a850b0a8ccc59");
    ("promising", "example2-vmid-nobarrier", "7bd8fdd08b7ba7ac98c273106bf31ac2");
    ("sc", "example2-vmid-linux-lock", "cc50367be32898f6e26a850b0a8ccc59");
    ("tso", "example2-vmid-linux-lock", "cc50367be32898f6e26a850b0a8ccc59");
    ("promising", "example2-vmid-linux-lock", "48337ca23bd62408c01757b14db00804");
    ("sc", "example3-vcpu-nobarrier", "c658069ca13752d2c6185b6c6a438482");
    ("tso", "example3-vcpu-nobarrier", "c658069ca13752d2c6185b6c6a438482");
    ("promising", "example3-vcpu-nobarrier", "cd08ee6c6e219667c3a72e50bdf459f7");
    ("sc", "example3-vcpu-relacq", "c658069ca13752d2c6185b6c6a438482");
    ("tso", "example3-vcpu-relacq", "c658069ca13752d2c6185b6c6a438482");
    ("promising", "example3-vcpu-relacq", "c658069ca13752d2c6185b6c6a438482");
    ("sc", "example7-user-to-kernel", "aa3c1fb2fb1b3866609db387b9380e54");
    ("tso", "example7-user-to-kernel", "aa3c1fb2fb1b3866609db387b9380e54");
    ("promising", "example7-user-to-kernel", "8f806f369587833b144abcded3d62ed5");
    ("sc", "mp-plain", "1fc71a64d57b706e44324895c1fd6b47");
    ("tso", "mp-plain", "1fc71a64d57b706e44324895c1fd6b47");
    ("promising", "mp-plain", "8a1956d204a27c98cd7a5c22d3f822d6");
    ("sc", "mp-dmb", "1fc71a64d57b706e44324895c1fd6b47");
    ("tso", "mp-dmb", "1fc71a64d57b706e44324895c1fd6b47");
    ("promising", "mp-dmb", "1fc71a64d57b706e44324895c1fd6b47");
    ("sc", "mp-rel-acq", "1fc71a64d57b706e44324895c1fd6b47");
    ("tso", "mp-rel-acq", "1fc71a64d57b706e44324895c1fd6b47");
    ("promising", "mp-rel-acq", "1fc71a64d57b706e44324895c1fd6b47");
    ("sc", "sb-plain", "2fadd2cef85290b12756d3c89f689d1a");
    ("tso", "sb-plain", "36f6b4f1b45f73a9114ef19366b8163c");
    ("promising", "sb-plain", "36f6b4f1b45f73a9114ef19366b8163c");
    ("sc", "sb-dmb", "2fadd2cef85290b12756d3c89f689d1a");
    ("tso", "sb-dmb", "2fadd2cef85290b12756d3c89f689d1a");
    ("promising", "sb-dmb", "2fadd2cef85290b12756d3c89f689d1a");
    ("sc", "lb-data", "7c83c1216d153afc32725fcea4cc28be");
    ("tso", "lb-data", "7c83c1216d153afc32725fcea4cc28be");
    ("promising", "lb-data", "7c83c1216d153afc32725fcea4cc28be");
    ("sc", "corr", "b770567301caf5eb129c8c144d47b730");
    ("tso", "corr", "b770567301caf5eb129c8c144d47b730");
    ("promising", "corr", "b770567301caf5eb129c8c144d47b730");
    ("sc", "mp-dmb-addr", "a487374b14a070aaf90e4600a9a37966");
    ("tso", "mp-dmb-addr", "a487374b14a070aaf90e4600a9a37966");
    ("promising", "mp-dmb-addr", "a487374b14a070aaf90e4600a9a37966");
    ("sc", "s-plain", "54c1dbcbf906a10e77b5e654beaa10fa");
    ("tso", "s-plain", "54c1dbcbf906a10e77b5e654beaa10fa");
    ("promising", "s-plain", "2664ecbfbb4e3219001881f95d3ec8ec");
    ("sc", "s-dmb", "54c1dbcbf906a10e77b5e654beaa10fa");
    ("tso", "s-dmb", "54c1dbcbf906a10e77b5e654beaa10fa");
    ("promising", "s-dmb", "54c1dbcbf906a10e77b5e654beaa10fa");
    ("sc", "2+2w-plain", "4fe5f2f1167674eae7f11175aed10525");
    ("tso", "2+2w-plain", "4fe5f2f1167674eae7f11175aed10525");
    ("promising", "2+2w-plain", "1113e7e201844f72ce566b35426dc5c3");
    ("sc", "2+2w-dmbst", "4fe5f2f1167674eae7f11175aed10525");
    ("tso", "2+2w-dmbst", "4fe5f2f1167674eae7f11175aed10525");
    ("promising", "2+2w-dmbst", "4fe5f2f1167674eae7f11175aed10525");
    ("sc", "wrc-plain", "fc117c6eaebeec0a24117d84f6474bbd");
    ("tso", "wrc-plain", "fc117c6eaebeec0a24117d84f6474bbd");
    ("promising", "wrc-plain", "69e09ce614011f6e040bf34c0af62bf7");
    ("sc", "wrc-dmb", "fc117c6eaebeec0a24117d84f6474bbd");
    ("tso", "wrc-dmb", "fc117c6eaebeec0a24117d84f6474bbd");
    ("promising", "wrc-dmb", "fc117c6eaebeec0a24117d84f6474bbd");
    ("sc", "wrc-addr", "092bf53ddcf4e7e0885a73578c14959f");
    ("tso", "wrc-addr", "092bf53ddcf4e7e0885a73578c14959f");
    ("promising", "wrc-addr", "092bf53ddcf4e7e0885a73578c14959f");
    ("sc", "isa2-dmb", "fc117c6eaebeec0a24117d84f6474bbd");
    ("tso", "isa2-dmb", "fc117c6eaebeec0a24117d84f6474bbd");
    ("promising", "isa2-dmb", "fc117c6eaebeec0a24117d84f6474bbd");
    ("sc", "mp-dmb-ctrl", "defb4a92ef00e582140d49b3daa905fd");
    ("tso", "mp-dmb-ctrl", "defb4a92ef00e582140d49b3daa905fd");
    ("promising", "mp-dmb-ctrl", "225a0f95e4b95a74ac0dfd1c450da8b9");
    ("sc", "mp-dmb-ctrl-isb", "defb4a92ef00e582140d49b3daa905fd");
    ("tso", "mp-dmb-ctrl-isb", "defb4a92ef00e582140d49b3daa905fd");
    ("promising", "mp-dmb-ctrl-isb", "defb4a92ef00e582140d49b3daa905fd");
    ("sc", "lb-ctrl", "864e63470fbdb68da2f9eeba9e8f1e9a");
    ("tso", "lb-ctrl", "864e63470fbdb68da2f9eeba9e8f1e9a");
    ("promising", "lb-ctrl", "864e63470fbdb68da2f9eeba9e8f1e9a");
    ("sc", "cowr", "9ca172a8e46d8a166dd9db7638bf041f");
    ("tso", "cowr", "9ca172a8e46d8a166dd9db7638bf041f");
    ("promising", "cowr", "9ca172a8e46d8a166dd9db7638bf041f");
    ("sc", "corw1", "3ae0377195d1782cf84796589edcc3f0");
    ("tso", "corw1", "3ae0377195d1782cf84796589edcc3f0");
    ("promising", "corw1", "3ae0377195d1782cf84796589edcc3f0");
    ("sc", "sb-one-dmb", "2fadd2cef85290b12756d3c89f689d1a");
    ("tso", "sb-one-dmb", "36f6b4f1b45f73a9114ef19366b8163c");
    ("promising", "sb-one-dmb", "36f6b4f1b45f73a9114ef19366b8163c");
    ("sc", "rel-acq-two-fields", "310ab5cfccacb55d6aff4543547b8e6c");
    ("tso", "rel-acq-two-fields", "310ab5cfccacb55d6aff4543547b8e6c");
    ("promising", "rel-acq-two-fields", "310ab5cfccacb55d6aff4543547b8e6c");
    ("sc", "r-plain", "34b70a1ef20c848c98bea1cd2b20c18f");
    ("tso", "r-plain", "fda8c281912c9b76c7b16bf11f306852");
    ("promising", "r-plain", "fda8c281912c9b76c7b16bf11f306852");
    ("sc", "r-dmb", "34b70a1ef20c848c98bea1cd2b20c18f");
    ("tso", "r-dmb", "34b70a1ef20c848c98bea1cd2b20c18f");
    ("promising", "r-dmb", "34b70a1ef20c848c98bea1cd2b20c18f");
    ("sc", "corr-total", "d9179033498b58655f3dbde7c957eac8");
    ("tso", "corr-total", "d9179033498b58655f3dbde7c957eac8");
    ("promising", "corr-total", "d9179033498b58655f3dbde7c957eac8");
    ("sc", "sb-rel-acq", "2fadd2cef85290b12756d3c89f689d1a");
    ("tso", "sb-rel-acq", "36f6b4f1b45f73a9114ef19366b8163c");
    ("promising", "sb-rel-acq", "2fadd2cef85290b12756d3c89f689d1a");
    ("sc", "gen_vmid", "cc50367be32898f6e26a850b0a8ccc59");
    ("promising", "gen_vmid", "48337ca23bd62408c01757b14db00804");
    ("pushpull", "gen_vmid", "ok:cc50367be32898f6e26a850b0a8ccc59");
    ("sc", "vcpu-switch", "b3a3ee4b0fd10adbe42f755a2dcff391");
    ("promising", "vcpu-switch", "b3a3ee4b0fd10adbe42f755a2dcff391");
    ("pushpull", "vcpu-switch", "ok:b3a3ee4b0fd10adbe42f755a2dcff391");
    ("sc", "vm-boot-state", "3b6bbaf691e96ae2ed86a4562ecefea3");
    ("promising", "vm-boot-state", "984ff0b9f1e9586ba9d564f79bb8f66a");
    ("pushpull", "vm-boot-state", "ok:3b6bbaf691e96ae2ed86a4562ecefea3");
    ("sc", "share-page", "140aeaea0c804c205a9ea7ea229c9584");
    ("promising", "share-page", "88ecba2179b8a248030dc94db2f4fdf5");
    ("pushpull", "share-page", "ok:140aeaea0c804c205a9ea7ea229c9584");
    ("sc", "mcs-counter", "965cbd21d5566170706e0622c244e20c");
    ("promising", "mcs-counter", "965cbd21d5566170706e0622c244e20c");
    ("pushpull", "mcs-counter", "ok:965cbd21d5566170706e0622c244e20c");
    ("sc", "mcs-handoff", "eddf645b902b9c57eb5b2940e9ce21b7");
    ("promising", "mcs-handoff", "eddf645b902b9c57eb5b2940e9ce21b7");
    ("pushpull", "mcs-handoff", "ok:eddf645b902b9c57eb5b2940e9ce21b7");
    ("sc", "gen_vmid-nobarrier", "cc50367be32898f6e26a850b0a8ccc59");
    ("promising", "gen_vmid-nobarrier", "7bd8fdd08b7ba7ac98c273106bf31ac2");
    ("pushpull", "gen_vmid-nobarrier", "ok:cc50367be32898f6e26a850b0a8ccc59");
    ("sc", "vcpu-switch-nobarrier", "b3a3ee4b0fd10adbe42f755a2dcff391");
    ("promising", "vcpu-switch-nobarrier", "ea03959bf7d75f90a5bf86aa584b3797");
    ("pushpull", "vcpu-switch-nobarrier", "ok:b3a3ee4b0fd10adbe42f755a2dcff391");
    ("sc", "mcs-handoff-nobarrier", "eddf645b902b9c57eb5b2940e9ce21b7");
    ("promising", "mcs-handoff-nobarrier", "b65993874d3e7f38188d76355d677878");
    ("pushpull", "mcs-handoff-nobarrier", "ok:eddf645b902b9c57eb5b2940e9ce21b7");
    ("sc", "unlocked-counter", "73ef2ef515dd0086a2b64b8df39df110");
    ("promising", "unlocked-counter", "73ef2ef515dd0086a2b64b8df39df110");
    ("pushpull", "unlocked-counter", "violation:CPU 1: access to a shared location not owned on base counter (shared base accessed outside pull/push section)");
    ("sc", "push-without-pull", "0b209fbb1ee44d0028de5297ee9ec421");
    ("promising", "push-without-pull", "0b209fbb1ee44d0028de5297ee9ec421");
    ("pushpull", "push-without-pull", "violation:CPU 0: push of a location not owned by this CPU on base counter (base not owned by pushing CPU)");
  ]

let litmus = Paper_examples.all @ Litmus_suite.all
let kernel = Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus

(* Canonical rendering of a push/pull verdict, shared by the golden and
   POR-parity tests: violations render through [pp_violation], so parity
   here means the exact first violation string. *)
let pp_check = function
  | Pushpull.Drf_ok b -> "ok:" ^ digest_behaviors b
  | Pushpull.Drf_violation v ->
      Format.asprintf "violation:%a" Pushpull.pp_violation v
  | Pushpull.Drf_kernel_panic _ -> "panic"

(* Recompute every golden entry with the engine-based executors, in the
   same order the goldens were captured. *)
let computed () =
  List.concat_map
    (fun (t : Litmus.t) ->
      let p = t.Litmus.prog in
      [ ("sc", p.Prog.name, digest_behaviors (Sc.run p));
        ("tso", p.Prog.name, digest_behaviors (Tso.run ~fuel:3 p));
        ( "promising",
          p.Prog.name,
          digest_behaviors (Promising.run ?config:t.Litmus.rm_config p) ) ])
    litmus
  @ List.concat_map
      (fun (e : Sekvm.Kernel_progs.entry) ->
        let p = e.Sekvm.Kernel_progs.prog in
        [ ("sc", e.Sekvm.Kernel_progs.name, digest_behaviors (Sc.run p));
          ( "promising",
            e.Sekvm.Kernel_progs.name,
            digest_behaviors
              (Promising.run ~config:e.Sekvm.Kernel_progs.rm_config p) );
          ( "pushpull",
            e.Sekvm.Kernel_progs.name,
            pp_check
              (Pushpull.check ~exempt:e.Sekvm.Kernel_progs.exempt
                 ~initial_owners:e.Sekvm.Kernel_progs.initial_owners p) ) ])
      kernel

let test_golden_parity () =
  let got = computed () in
  Alcotest.(check int) "corpus size unchanged" (List.length golden)
    (List.length got);
  List.iter2
    (fun (m, n, want) (m', n', have) ->
      Alcotest.(check string)
        (Printf.sprintf "%s/%s entry" m n)
        (m ^ "/" ^ n) (m' ^ "/" ^ n');
      Alcotest.(check string) (Printf.sprintf "%s/%s behaviors" m n) want have)
    golden got

(* jobs=1 and jobs=4 must produce identical behavior sets: the search is
   over a pure transition system, so the union of the BFS-prefix and
   per-domain DFS outcomes is schedule-independent. *)
let test_jobs_equivalence () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = t.Litmus.prog in
      Alcotest.(check bool)
        (p.Prog.name ^ " sc jobs=4")
        true
        (Behavior.equal (Sc.run p) (Sc.run ~jobs:4 p));
      Alcotest.(check bool)
        (p.Prog.name ^ " tso jobs=4")
        true
        (Behavior.equal (Tso.run ~fuel:3 p) (Tso.run ~fuel:3 ~jobs:4 p)))
    litmus;
  List.iter
    (fun (t : Litmus.t) ->
      let p = t.Litmus.prog in
      Alcotest.(check bool)
        (p.Prog.name ^ " promising jobs=4")
        true
        (Behavior.equal
           (Promising.run ?config:t.Litmus.rm_config p)
           (Promising.run ?config:t.Litmus.rm_config ~jobs:4 p)))
    Paper_examples.all

let test_jobs_equivalence_pushpull () =
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let p = e.Sekvm.Kernel_progs.prog in
      let run jobs =
        Pushpull.check ~exempt:e.Sekvm.Kernel_progs.exempt
          ~initial_owners:e.Sekvm.Kernel_progs.initial_owners ~jobs p
      in
      let same =
        match (run 1, run 4) with
        | Pushpull.Drf_ok a, Pushpull.Drf_ok b -> Behavior.equal a b
        | Pushpull.Drf_violation _, Pushpull.Drf_violation _ -> true
        | Pushpull.Drf_kernel_panic _, Pushpull.Drf_kernel_panic _ -> true
        | _ -> false
      in
      Alcotest.(check bool)
        (e.Sekvm.Kernel_progs.name ^ " pushpull jobs=4")
        true same)
    kernel

let test_stats_sanity () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = t.Litmus.prog in
      let check_stats model (b, (s : Engine.stats)) =
        let name what = Printf.sprintf "%s %s %s" p.Prog.name model what in
        Alcotest.(check bool)
          (name "visited >= outcomes")
          true
          (s.Engine.visited >= Behavior.cardinal b);
        Alcotest.(check bool)
          (name "dedup >= 0")
          true (s.Engine.dedup_hits >= 0);
        (* every visited state except the root was reached by an
           enumerated transition *)
        Alcotest.(check bool)
          (name "transitions >= visited - 1")
          true
          (s.Engine.transitions >= s.Engine.visited - 1);
        Alcotest.(check int)
          (name "outcomes field")
          (Behavior.cardinal b) s.Engine.outcomes;
        Alcotest.(check bool) (name "wall >= 0") true (s.Engine.wall_s >= 0.)
      in
      check_stats "sc" (Sc.run_stats p);
      check_stats "promising"
        (Promising.run_stats ?config:t.Litmus.rm_config p))
    Paper_examples.all;
  (* the Litmus harness surfaces the same stats *)
  let r = Litmus.run Paper_examples.example1 in
  Alcotest.(check bool) "litmus sc stats populated" true
    (r.Litmus.sc_stats.Engine.visited > 0);
  Alcotest.(check bool) "litmus rm stats populated" true
    (r.Litmus.rm_stats.Engine.visited > 0)

(* POR must not change any behavior set: for every litmus program and
   kernel corpus entry, the SC and TSO digests with POR on equal the
   exact-search digests — sequentially and at jobs=4 (work stealing). *)
let test_por_equivalence () =
  let progs =
    List.map (fun (t : Litmus.t) -> t.Litmus.prog) litmus
    @ List.map (fun (e : Sekvm.Kernel_progs.entry) -> e.Sekvm.Kernel_progs.prog)
        kernel
  in
  List.iter
    (fun (p : Prog.t) ->
      let sc_exact = digest_behaviors (Sc.run ~por:false p) in
      let tso_exact = digest_behaviors (Tso.run ~fuel:3 ~por:false p) in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s sc por jobs=%d" p.Prog.name jobs)
            sc_exact
            (digest_behaviors (Sc.run ~jobs ~por:true p));
          Alcotest.(check string)
            (Printf.sprintf "%s tso por jobs=%d" p.Prog.name jobs)
            tso_exact
            (digest_behaviors (Tso.run ~fuel:3 ~jobs ~por:true p)))
        [ 1; 4 ];
      Alcotest.(check string)
        (p.Prog.name ^ " sc exact jobs=4")
        sc_exact
        (digest_behaviors (Sc.run ~jobs:4 ~por:false p)))
    progs

(* POR must actually reduce: over each corpus, every model visits
   strictly fewer states with POR on, and the prune counter is nonzero.
   (Per-program this can tie — a two-thread racy program may have no
   ample or sleepable step — so we assert on the corpus sum. Promising
   entries under [strict_certification] run exact either way and
   contribute equally to both sides.) *)
let test_por_reduces () =
  let sum f =
    List.fold_left
      (fun (on, off, pruned) (t : Litmus.t) ->
        let _, (s_on : Engine.stats) = f ~por:true t in
        let _, (s_off : Engine.stats) = f ~por:false t in
        ( on + s_on.Engine.visited,
          off + s_off.Engine.visited,
          pruned + s_on.Engine.por_pruned ))
      (0, 0, 0) litmus
  in
  let check name (on, off, pruned) =
    Alcotest.(check bool)
      (name ^ ": POR visits strictly fewer states")
      true (on < off);
    Alcotest.(check bool) (name ^ ": POR prunes transitions") true (pruned > 0)
  in
  check "sc" (sum (fun ~por t -> Sc.run_stats ~por t.Litmus.prog));
  check "tso" (sum (fun ~por t -> Tso.run_stats ~fuel:3 ~por t.Litmus.prog));
  check "promising"
    (sum (fun ~por t ->
         Promising.run_stats ?config:t.Litmus.rm_config ~por t.Litmus.prog));
  check "pushpull"
    (List.fold_left
       (fun (on, off, pruned) (e : Sekvm.Kernel_progs.entry) ->
         let run por =
           Pushpull.check_stats ~exempt:e.Sekvm.Kernel_progs.exempt
             ~initial_owners:e.Sekvm.Kernel_progs.initial_owners ~por
             e.Sekvm.Kernel_progs.prog
         in
         let _, (s_on : Engine.stats) = run true in
         let _, (s_off : Engine.stats) = run false in
         ( on + s_on.Engine.visited,
           off + s_off.Engine.visited,
           pruned + s_on.Engine.por_pruned ))
       (0, 0, 0) Sekvm.Kernel_progs.corpus)

(* The certification-aware Promising oracle must not change any behavior
   set: with POR forced on and off, every litmus program and kernel
   entry (boundary and lint corpora included) lands on one digest —
   combined with the golden table above, both toggles reproduce the
   seed digests exactly. *)
let test_por_parity_promising () =
  List.iter
    (fun (t : Litmus.t) ->
      let p = t.Litmus.prog in
      let d por =
        digest_behaviors (Promising.run ?config:t.Litmus.rm_config ~por p)
      in
      Alcotest.(check string)
        (p.Prog.name ^ " promising por on = off")
        (d false) (d true))
    litmus;
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let d por =
        digest_behaviors
          (Promising.run ~config:e.Sekvm.Kernel_progs.rm_config ~por
             e.Sekvm.Kernel_progs.prog)
      in
      Alcotest.(check string)
        (e.Sekvm.Kernel_progs.name ^ " promising por on = off")
        (d false) (d true))
    (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus
   @ Sekvm.Kernel_progs.boundary_corpus @ Sekvm.Kernel_progs.lint_corpus)

(* Same for the ownership oracle: violating transitions carry global
   footprints and are never slept, so the sequential search must report
   the exact same first violation (string-for-string) with POR on or
   off. At jobs=4 the winning schedule is racy, so only the
   classification (which constructor; for violations, which kind on
   which base) is asserted. *)
let test_por_parity_pushpull () =
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let run ~jobs por =
        Pushpull.check ~exempt:e.Sekvm.Kernel_progs.exempt
          ~initial_owners:e.Sekvm.Kernel_progs.initial_owners ~jobs ~por
          e.Sekvm.Kernel_progs.prog
      in
      let want = run ~jobs:1 false in
      Alcotest.(check string)
        (e.Sekvm.Kernel_progs.name ^ " pushpull por on = off")
        (pp_check want)
        (pp_check (run ~jobs:1 true));
      let classified =
        match (want, run ~jobs:4 true) with
        | Pushpull.Drf_ok a, Pushpull.Drf_ok b -> Behavior.equal a b
        | Pushpull.Drf_violation a, Pushpull.Drf_violation b ->
            a.Pushpull.v_kind = b.Pushpull.v_kind
            && a.Pushpull.v_base = b.Pushpull.v_base
        | Pushpull.Drf_kernel_panic a, Pushpull.Drf_kernel_panic b -> a = b
        | _ -> false
      in
      Alcotest.(check bool)
        (e.Sekvm.Kernel_progs.name ^ " pushpull por jobs=4 classification")
        true classified)
    kernel

(* A deadline already in the past must stop a jobs=4 work-stealing
   search promptly: budget_hit set, almost nothing visited. *)
let test_parallel_cancellation () =
  let p = Paper_examples.example1.Litmus.prog in
  let deadline = Unix.gettimeofday () -. 1.0 in
  let _, (s : Engine.stats) = Sc.run_stats ~jobs:4 ~deadline p in
  Alcotest.(check bool) "budget_hit set" true s.Engine.budget_hit;
  Alcotest.(check bool)
    (Printf.sprintf "visited tiny (%d)" s.Engine.visited)
    true
    (s.Engine.visited <= 8);
  (* same through the Promising executor (lazy expansion path) *)
  let _, (sp : Engine.stats) = Promising.run_stats ~jobs:4 ~deadline p in
  Alcotest.(check bool) "promising budget_hit set" true sp.Engine.budget_hit

(* A deadline expiring mid-search must classify the partial result the
   same way regardless of partitioning: a refinement check cancelled at
   jobs=1 and at jobs=4 both flag budget_hit and agree on the verdict
   classification (with an already-past deadline both sides are cut at
   the root, so the comparison is deterministic). *)
let test_deadline_classification () =
  let e = List.hd kernel in
  let p = e.Sekvm.Kernel_progs.prog
  and config = e.Sekvm.Kernel_progs.rm_config in
  let deadline = Unix.gettimeofday () -. 1.0 in
  let v1 = Vrm.Refinement.check ~config ~jobs:1 ~deadline p in
  let v4 = Vrm.Refinement.check ~config ~jobs:4 ~deadline p in
  Alcotest.(check bool) "jobs=1 rm budget_hit" true
    v1.Vrm.Refinement.rm_stats.Engine.budget_hit;
  Alcotest.(check bool) "jobs=4 rm budget_hit" true
    v4.Vrm.Refinement.rm_stats.Engine.budget_hit;
  Alcotest.(check bool) "holds classification equal" v1.Vrm.Refinement.holds
    v4.Vrm.Refinement.holds;
  Alcotest.(check string) "cancelled rm digests equal"
    (digest_behaviors v1.Vrm.Refinement.rm)
    (digest_behaviors v4.Vrm.Refinement.rm);
  Alcotest.(check string) "cancelled sc digests equal"
    (digest_behaviors v1.Vrm.Refinement.sc)
    (digest_behaviors v4.Vrm.Refinement.sc)

(* max_states is one global budget in parallel mode: jobs=4 with a tiny
   budget stops near it, not at 4x it. *)
let test_global_budget () =
  let p = Paper_examples.example1.Litmus.prog in
  let cfg = { Promising.default_config with max_promises = 2 } in
  let exact, (full : Engine.stats) = Promising.run_stats ~config:cfg p in
  ignore exact;
  let budget = max 4 (full.Engine.visited / 4) in
  let _, (s : Engine.stats) =
    Promising.run_stats ~config:{ cfg with max_states = budget } ~jobs:4 p
  in
  Alcotest.(check bool) "budget_hit set" true s.Engine.budget_hit;
  (* each domain may overshoot by the frames already in flight, but not
     by another domain's worth of private budget *)
  Alcotest.(check bool)
    (Printf.sprintf "visited %d near budget %d" s.Engine.visited budget)
    true
    (s.Engine.visited < 2 * budget)

(* Certification memoization must be verdict-preserving: for every
   litmus program and every kernel corpus entry (including the boundary
   and lint corpora), the Promising behavior set with the cert cache on
   is bit-identical to the set with it off. *)
let all_kernel =
  Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus
  @ Sekvm.Kernel_progs.boundary_corpus @ Sekvm.Kernel_progs.lint_corpus

let test_cert_cache_equivalence () =
  let check_prog name config p =
    let digest cert_cache =
      digest_behaviors
        (Promising.run ~config:{ config with Promising.cert_cache } p)
    in
    Alcotest.(check string) (name ^ " cert-cache on = off") (digest false)
      (digest true)
  in
  List.iter
    (fun (t : Litmus.t) ->
      let config =
        Option.value ~default:Promising.default_config t.Litmus.rm_config
      in
      check_prog t.Litmus.prog.Prog.name config t.Litmus.prog)
    litmus;
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      check_prog e.Sekvm.Kernel_progs.name e.Sekvm.Kernel_progs.rm_config
        e.Sekvm.Kernel_progs.prog)
    all_kernel

(* The cache must actually field queries on the kernel corpus (lock
   promises revisit equivalent certification problems), and report
   nothing when disabled. *)
let test_cert_cache_hits () =
  let calls, hits =
    List.fold_left
      (fun (c, h) (e : Sekvm.Kernel_progs.entry) ->
        let _, (s : Engine.stats) =
          Promising.run_stats ~config:e.Sekvm.Kernel_progs.rm_config
            e.Sekvm.Kernel_progs.prog
        in
        (c + s.Engine.cert_calls, h + s.Engine.cert_hits))
      (0, 0) kernel
  in
  Alcotest.(check bool) "cert_calls > 0 over the corpus" true (calls > 0);
  Alcotest.(check bool) "cert_hits > 0 over the corpus" true (hits > 0);
  Alcotest.(check bool) "hits <= calls" true (hits <= calls);
  let e = List.hd kernel in
  let _, (off : Engine.stats) =
    Promising.run_stats
      ~config:
        { e.Sekvm.Kernel_progs.rm_config with Promising.cert_cache = false }
      e.Sekvm.Kernel_progs.prog
  in
  Alcotest.(check int) "cache off reports zero calls" 0 off.Engine.cert_calls;
  (* the Litmus harness override reaches the model *)
  let r = Litmus.run ~cert_cache:false Paper_examples.example1 in
  Alcotest.(check int) "litmus --no-cert-cache reports zero calls" 0
    r.Litmus.rm_stats.Engine.cert_calls

(* Thread-symmetry reduction must not change any behavior set: for
   every litmus program and kernel entry across all four corpora (plus
   the sym-stress family itself), the SC, TSO and Promising digests
   with orbit canonicalization on equal the plain-key digests —
   combined with the golden table above, sym-on reproduces the seed
   digests exactly. Promising entries under [strict_certification]
   force canonicalization off internally and trivially tie. *)
let test_sym_parity_models () =
  let progs =
    List.map (fun (t : Litmus.t) -> (t.Litmus.prog, t.Litmus.rm_config)) litmus
    @ List.map
        (fun (e : Sekvm.Kernel_progs.entry) ->
          (e.Sekvm.Kernel_progs.prog, Some e.Sekvm.Kernel_progs.rm_config))
        (all_kernel @ Sekvm.Kernel_progs.sym_corpus)
  in
  List.iter
    (fun ((p : Prog.t), config) ->
      let check model d =
        Alcotest.(check string)
          (p.Prog.name ^ " " ^ model ^ " sym on = off")
          (d false) (d true)
      in
      check "sc" (fun sym -> digest_behaviors (Sc.run ~sym p));
      check "tso" (fun sym -> digest_behaviors (Tso.run ~fuel:3 ~sym p));
      check "promising" (fun sym ->
          digest_behaviors (Promising.run ?config ~sym p)))
    progs

(* Same for the ownership oracle, violation strings included: when any
   base is tracked the checker refuses to canonicalize (a collapsed
   state could alias the reported thread id), so the first violation is
   string-for-string identical with sym on or off. *)
let test_sym_parity_pushpull () =
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let run sym =
        Pushpull.check ~exempt:e.Sekvm.Kernel_progs.exempt
          ~initial_owners:e.Sekvm.Kernel_progs.initial_owners ~sym
          e.Sekvm.Kernel_progs.prog
      in
      Alcotest.(check string)
        (e.Sekvm.Kernel_progs.name ^ " pushpull sym on = off")
        (pp_check (run false))
        (pp_check (run true)))
    (all_kernel @ Sekvm.Kernel_progs.sym_corpus)

(* The reduction must actually reduce on the family built for it: on
   every sym-stress entry one group covering all threads is detected,
   arrivals collapse, and the visited count drops — by at least 5x at
   N=4 (the committed acceptance floor; measured ~20x). With sym off
   the stats must report no groups. *)
let test_sym_reduces () =
  List.iter
    (fun (e : Sekvm.Kernel_progs.entry) ->
      let p = e.Sekvm.Kernel_progs.prog in
      let name what = Printf.sprintf "%s %s" e.Sekvm.Kernel_progs.name what in
      let _, (sc_on : Engine.stats) = Sc.run_stats ~sym:true p in
      let _, (sc_off : Engine.stats) = Sc.run_stats ~sym:false p in
      let _, (rm_on : Engine.stats) =
        Promising.run_stats ~config:e.Sekvm.Kernel_progs.rm_config ~sym:true p
      in
      let _, (rm_off : Engine.stats) =
        Promising.run_stats ~config:e.Sekvm.Kernel_progs.rm_config ~sym:false
          p
      in
      Alcotest.(check int) (name "sc one group") 1 sc_on.Engine.sym_groups;
      Alcotest.(check int)
        (name "sc off reports no groups")
        0 sc_off.Engine.sym_groups;
      Alcotest.(check bool)
        (name "sc collapses arrivals")
        true
        (sc_on.Engine.sym_collapsed > 0);
      Alcotest.(check bool)
        (name "sc visits fewer states")
        true
        (sc_on.Engine.visited < sc_off.Engine.visited);
      Alcotest.(check bool)
        (name "promising visits fewer states")
        true
        (rm_on.Engine.visited < rm_off.Engine.visited);
      if e.Sekvm.Kernel_progs.name = "sym-stress-4" then begin
        let ratio (on : Engine.stats) (off : Engine.stats) =
          float_of_int off.Engine.visited /. float_of_int on.Engine.visited
        in
        Alcotest.(check bool)
          (name "sc cut >= 5x at N=4")
          true
          (ratio sc_on sc_off >= 5.);
        Alcotest.(check bool)
          (name "promising cut >= 5x at N=4")
          true
          (ratio rm_on rm_off >= 5.)
      end)
    Sekvm.Kernel_progs.sym_corpus

(* Permuting the declaration order of interchangeable threads is
   invisible through the canonical quotient: every declaration order
   produces the same behavior-set digests AND the same sym-on visited
   count (the orbit representative sorts per-thread sub-keys, which
   never mention thread position, so the canonical state-key stream is
   order-independent). *)
let qcheck_sym_permutation =
  let base = Sekvm.Kernel_progs.sym_stress_prog 4 "sym-perm" in
  let id_sc = lazy (digest_behaviors (Sc.run base)) in
  let id_rm = lazy (digest_behaviors (Promising.run base)) in
  let id_visited =
    lazy
      (let _, (s : Engine.stats) = Sc.run_stats base in
       s.Engine.visited)
  in
  QCheck.Test.make ~count:15
    ~name:"thread permutations leave digests and canonical quotient unchanged"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      (* derive a permutation of the 4 threads from the seed via a
         Fisher-Yates pass on a tiny deterministic LCG *)
      let a = [| 0; 1; 2; 3 |] in
      let s = ref ((seed * 2) + 1) in
      for i = 3 downto 1 do
        s := ((!s * 1103515245) + 12345) land 0x3fffffff;
        let j = !s mod (i + 1) in
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      done;
      let threads =
        Array.to_list (Array.map (List.nth base.Prog.threads) a)
      in
      let p = { base with Prog.threads } in
      let _, (s_on : Engine.stats) = Sc.run_stats ~sym:true p in
      digest_behaviors (Sc.run p) = Lazy.force id_sc
      && digest_behaviors (Promising.run p) = Lazy.force id_rm
      && s_on.Engine.visited = Lazy.force id_visited)

(* Stripe stability: the engine shards its shared seen set by the high
   bits of {!Statekey.hash}, and each stripe's open-addressing table
   doubles independently as it fills. Growth must never migrate a key
   across stripes — the stripe index is a pure function of the key —
   and the per-stripe tables must stay exact (every key findable in
   its stripe, in no other, occupancy summing to the insert count). *)
let test_stripe_stability () =
  let nstripes = 64 in
  let stripe_of key = Statekey.hash key lsr 48 land (nstripes - 1) in
  let stripes =
    Array.init nstripes (fun _ ->
        Statekey.Table.create ~initial:2 ~dummy:(-1) ())
  in
  let n = 20_000 in
  let keys =
    Array.init n (fun i ->
        let h = Statekey.fresh () in
        Statekey.int h (i * 2654435761);
        Statekey.str h "stripe-stability";
        Statekey.finish h)
  in
  (* record each key's stripe at insert time, against tiny tables *)
  let home = Array.map stripe_of keys in
  Array.iteri
    (fun i key ->
      match Statekey.Table.find_or_add stripes.(home.(i)) key i with
      | `Added -> ()
      | `Found _ -> Alcotest.failf "key %d already present" i)
    keys;
  (* the tables doubled many times while filling *)
  Alcotest.(check bool) "tables grew" true
    (Array.exists (fun t -> Statekey.Table.capacity t > 2) stripes);
  Array.iter
    (fun t ->
      let c = Statekey.Table.capacity t in
      Alcotest.(check bool) "capacity is a positive power of two" true
        (c > 0 && c land (c - 1) = 0);
      Alcotest.(check bool) "capacity bounds length" true
        (Statekey.Table.length t <= c))
    stripes;
  (* after growth: stripe assignment unchanged, keys findable only in
     their stripe *)
  Array.iteri
    (fun i key ->
      Alcotest.(check int)
        (Printf.sprintf "key %d stripe stable across growth" i)
        home.(i) (stripe_of key);
      Alcotest.(check bool)
        (Printf.sprintf "key %d present in its stripe" i)
        true
        (Statekey.Table.mem stripes.(home.(i)) key);
      (* spot-check absence elsewhere (all 64 x 20k would be slow) *)
      let other = (home.(i) + 1 + (i mod (nstripes - 1))) mod nstripes in
      Alcotest.(check bool)
        (Printf.sprintf "key %d absent from stripe %d" i other)
        false
        (Statekey.Table.mem stripes.(other) key))
    keys;
  let total =
    Array.fold_left (fun acc t -> acc + Statekey.Table.length t) 0 stripes
  in
  Alcotest.(check int) "occupancy sums to insert count" n total

(* The seen-set shape counters surface through run_stats: a sequential
   run reports exactly one stripe whose occupancy is the visited count;
   a parallel run reports the striped layout. Contention and allocation
   counters stay sane in both modes. *)
let test_seen_set_stats () =
  let p = Paper_examples.example1.Litmus.prog in
  let _, (seq : Engine.stats) = Sc.run_stats p in
  Alcotest.(check int) "sequential: one stripe" 1 seq.Engine.seen_stripes;
  Alcotest.(check int) "sequential: occupancy = interned states"
    seq.Engine.visited seq.Engine.stripe_occupancy;
  Alcotest.(check int) "sequential: no lock waits" 0 seq.Engine.lock_waits;
  Alcotest.(check bool) "sequential: allocation measured" true
    (seq.Engine.minor_words > 0);
  let _, (par : Engine.stats) = Sc.run_stats ~jobs:4 p in
  Alcotest.(check bool) "parallel: stripes reported" true
    (par.Engine.seen_stripes >= 1);
  Alcotest.(check bool) "parallel: occupancy positive and bounded" true
    (par.Engine.stripe_occupancy > 0
    && par.Engine.stripe_occupancy <= par.Engine.visited);
  Alcotest.(check bool) "parallel: lock waits non-negative" true
    (par.Engine.lock_waits >= 0)

(* Corpus-level scheduling must return, in input order, exactly the
   verdict a direct per-entry check computes. *)
let test_check_many_parity () =
  let entries =
    List.map
      (fun (e : Sekvm.Kernel_progs.entry) ->
        ( e.Sekvm.Kernel_progs.name,
          e.Sekvm.Kernel_progs.prog,
          e.Sekvm.Kernel_progs.rm_config ))
      kernel
  in
  let direct =
    List.map
      (fun (name, p, config) -> (name, Vrm.Refinement.check ~config p))
      entries
  in
  let many = Vrm.Refinement.check_many ~jobs:4 entries in
  Alcotest.(check int) "result count" (List.length direct) (List.length many);
  List.iter2
    (fun (n1, (v1 : Vrm.Refinement.verdict))
         (n2, (v2 : Vrm.Refinement.verdict)) ->
      Alcotest.(check string) "order preserved" n1 n2;
      Alcotest.(check bool) (n1 ^ " holds equal") v1.Vrm.Refinement.holds
        v2.Vrm.Refinement.holds;
      Alcotest.(check string) (n1 ^ " sc digest")
        (digest_behaviors v1.Vrm.Refinement.sc)
        (digest_behaviors v2.Vrm.Refinement.sc);
      Alcotest.(check string) (n1 ^ " rm digest")
        (digest_behaviors v1.Vrm.Refinement.rm)
        (digest_behaviors v2.Vrm.Refinement.rm))
    direct many

let () =
  Alcotest.run "engine"
    [ ( "parity",
        [ Alcotest.test_case "behavior sets bit-identical to seed" `Quick
            test_golden_parity ] );
      ( "parallel",
        [ Alcotest.test_case "sc/tso/promising jobs=1 = jobs=4" `Slow
            test_jobs_equivalence;
          Alcotest.test_case "pushpull jobs=1 = jobs=4" `Slow
            test_jobs_equivalence_pushpull;
          Alcotest.test_case "past deadline cancels jobs=4 promptly" `Quick
            test_parallel_cancellation;
          Alcotest.test_case "cancelled partitions classify like sequential"
            `Quick test_deadline_classification;
          Alcotest.test_case "max_states is a global budget" `Quick
            test_global_budget ] );
      ( "por",
        [ Alcotest.test_case "por on/off digests equal everywhere" `Slow
            test_por_equivalence;
          Alcotest.test_case "promising por on/off digests equal" `Slow
            test_por_parity_promising;
          Alcotest.test_case "pushpull por on/off verdicts equal" `Slow
            test_por_parity_pushpull;
          Alcotest.test_case "por strictly reduces visited states" `Quick
            test_por_reduces ] );
      ( "cert-cache",
        [ Alcotest.test_case "on/off digests equal everywhere" `Slow
            test_cert_cache_equivalence;
          Alcotest.test_case "cache fields queries on the kernel corpus"
            `Quick test_cert_cache_hits;
          Alcotest.test_case "check_many = per-entry check" `Slow
            test_check_many_parity ] );
      ( "symmetry",
        [ Alcotest.test_case "sym on/off digests equal everywhere" `Slow
            test_sym_parity_models;
          Alcotest.test_case "pushpull sym on/off verdicts equal" `Slow
            test_sym_parity_pushpull;
          Alcotest.test_case "sym collapses the stress family" `Quick
            test_sym_reduces;
          QCheck_alcotest.to_alcotest qcheck_sym_permutation ] );
      ( "seen-set",
        [ Alcotest.test_case "stripe assignment stable across growth" `Quick
            test_stripe_stability;
          Alcotest.test_case "stripe counters surface in stats" `Quick
            test_seen_set_stats ] );
      ( "stats",
        [ Alcotest.test_case "exploration statistics sane" `Quick
            test_stats_sanity ] ) ]
