(* The SAT-based BMC backend cross-validated against the explicit-state
   engines: solver unit tests (pigeonhole UNSAT, assumption cores, random
   3-CNF vs brute force), golden digest parity over the whole litmus
   suite under both memory models, random-program equivalence, and the
   bmc payload codec. *)

open Memmodel

(* ---- SAT solver units ---- *)

(* Pigeonhole PHP(p -> h): p pigeons into h holes, UNSAT iff p > h.
   Classic resolution-hard family; exercises learning and restarts. *)
let pigeonhole p h =
  let s = Bmc.Sat.create () in
  let var = Array.init p (fun _ -> Array.init h (fun _ -> Bmc.Sat.new_var s)) in
  for i = 0 to p - 1 do
    Bmc.Sat.add_clause s (Array.to_list var.(i))
  done;
  for j = 0 to h - 1 do
    for i = 0 to p - 1 do
      for i' = i + 1 to p - 1 do
        Bmc.Sat.add_clause s [ -var.(i).(j); -var.(i').(j) ]
      done
    done
  done;
  Bmc.Sat.solve s

let test_pigeonhole () =
  Alcotest.(check bool) "PHP(4->3) unsat" true (pigeonhole 4 3 = Bmc.Sat.Unsat);
  Alcotest.(check bool) "PHP(5->4) unsat" true (pigeonhole 5 4 = Bmc.Sat.Unsat);
  Alcotest.(check bool) "PHP(4->4) sat" true (pigeonhole 4 4 = Bmc.Sat.Sat)

let test_unsat_core () =
  (* clauses: a -> x, b -> ~x, c free. Assuming {a, b, c} is UNSAT and
     the core must be a subset of the assumptions that is itself UNSAT
     (in particular it need not mention c). *)
  let s = Bmc.Sat.create () in
  let a = Bmc.Sat.new_var s in
  let b = Bmc.Sat.new_var s in
  let c = Bmc.Sat.new_var s in
  let x = Bmc.Sat.new_var s in
  Bmc.Sat.add_clause s [ -a; x ];
  Bmc.Sat.add_clause s [ -b; -x ];
  let assumptions = [ a; b; c ] in
  Alcotest.(check bool) "assumptions unsat" true
    (Bmc.Sat.solve ~assumptions s = Bmc.Sat.Unsat);
  let core = Bmc.Sat.unsat_core s in
  Alcotest.(check bool) "core non-empty" true (core <> []);
  Alcotest.(check bool) "core subset of assumptions" true
    (List.for_all (fun l -> List.mem l assumptions) core);
  Alcotest.(check bool) "core does not drag in c" true (not (List.mem c core));
  Alcotest.(check bool) "core alone is unsat" true
    (Bmc.Sat.solve ~assumptions:core s = Bmc.Sat.Unsat);
  (* dropping either side of the conflict makes it satisfiable again *)
  Alcotest.(check bool) "a alone sat" true
    (Bmc.Sat.solve ~assumptions:[ a; c ] s = Bmc.Sat.Sat)

(* Random 3-CNF instances near the phase transition, checked against a
   brute-force enumeration; when the solver answers Sat its model must
   satisfy every clause. *)
let test_random_3cnf () =
  Random.init 0x5eed;
  for _ = 1 to 200 do
    let nvars = 4 + Random.int 5 in
    let nclauses = 5 + Random.int (4 * nvars) in
    let clauses =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ ->
              let v = 1 + Random.int nvars in
              if Random.bool () then v else -v))
    in
    let s = Bmc.Sat.create () in
    for _ = 1 to nvars do
      ignore (Bmc.Sat.new_var s)
    done;
    List.iter (Bmc.Sat.add_clause s) clauses;
    let verdict = Bmc.Sat.solve s in
    let eval assign =
      List.for_all
        (List.exists (fun l ->
             if l > 0 then assign.(l - 1) else not assign.(-l - 1)))
        clauses
    in
    let brute = ref false in
    for m = 0 to (1 lsl nvars) - 1 do
      if not !brute then
        if eval (Array.init nvars (fun i -> m land (1 lsl i) <> 0)) then
          brute := true
    done;
    Alcotest.(check bool) "solver verdict matches brute force" !brute
      (verdict = Bmc.Sat.Sat);
    if verdict = Bmc.Sat.Sat then
      Alcotest.(check bool) "model satisfies the formula" true
        (eval (Array.init nvars (fun i -> Bmc.Sat.value s (i + 1))))
  done

(* ---- golden digest parity over the litmus suite ---- *)

let test_suite_parity () =
  List.iter
    (fun (t : Litmus.t) ->
      let prog = t.Litmus.prog in
      let d = Fingerprint.behaviors in
      let sc_ref = Sc.run prog and sc_bmc = Bmc.run_sc prog in
      if d sc_ref <> d sc_bmc then
        Alcotest.failf "%s: SC digest divergence@.explicit: %a@.bmc: %a"
          prog.Prog.name Behavior.pp sc_ref Behavior.pp sc_bmc;
      let rm_ref = Axiomatic.run prog and rm_bmc = Bmc.run prog in
      if d rm_ref <> d rm_bmc then
        Alcotest.failf "%s: Arm digest divergence@.explicit: %a@.bmc: %a"
          prog.Prog.name Behavior.pp rm_ref Behavior.pp rm_bmc)
    Litmus_suite.all

let test_suite_verdicts () =
  (* the BMC behavior set must decide every suite test's exists-clause
     exactly as the recorded expectations say *)
  List.iter
    (fun (t : Litmus.t) ->
      let rm = Bmc.check ~mode:Bmc.Arm t.Litmus.prog in
      let sc = Bmc.check ~mode:Bmc.Sc t.Litmus.prog in
      Alcotest.(check bool)
        (t.Litmus.prog.Prog.name ^ " complete")
        true
        (rm.Bmc.complete && sc.Bmc.complete);
      Alcotest.(check bool)
        (t.Litmus.prog.Prog.name ^ " rm verdict")
        t.Litmus.expect_rm
        (Behavior.satisfiable t.Litmus.exists rm.Bmc.behaviors);
      Alcotest.(check bool)
        (t.Litmus.prog.Prog.name ^ " sc verdict")
        t.Litmus.expect_sc
        (Behavior.satisfiable t.Litmus.exists sc.Bmc.behaviors))
    Litmus_suite.all

(* ---- random straight-line equivalence ---- *)

let gen_thread tid =
  let open QCheck.Gen in
  let base = oneofl [ "x"; "y" ] in
  let fresh_reg =
    let c = ref 0 in
    fun () ->
      incr c;
      Reg.v (Printf.sprintf "t%d_r%d" tid !c)
  in
  let lord = oneofl [ Instr.Plain; Instr.Acquire ] in
  let word = oneofl [ Instr.Plain; Instr.Release ] in
  let instr =
    frequency
      [ (3, map2 (fun b o -> `Load (b, o)) base lord);
        (3, map3 (fun b v o -> `Store (b, v, o)) base (int_range 1 2) word);
        (1, map2 (fun b o -> `Faa (b, o)) base lord);
        (1, oneofl [ `Dmb Instr.Dmb_full; `Dmb Instr.Dmb_ld; `Dmb Instr.Dmb_st ])
      ]
  in
  let rec build n acc =
    if n = 0 then return (List.rev acc)
    else
      instr >>= fun op ->
      let i =
        match op with
        | `Load (b, o) -> Instr.load ~order:o (fresh_reg ()) (Expr.at b)
        | `Store (b, v, o) -> Instr.store ~order:o (Expr.at b) (Expr.c v)
        | `Faa (b, o) -> Instr.faa ~order:o (fresh_reg ()) (Expr.at b) (Expr.c 1)
        | `Dmb k -> Instr.Barrier k
      in
      build (n - 1) (i :: acc)
  in
  int_range 1 3 >>= fun n -> build n []

let gen_prog =
  QCheck.Gen.map2
    (fun c1 c2 ->
      Prog.make ~name:"rand-bmc"
        ~observables:
          [ Prog.Obs_loc (Loc.v "x"); Prog.Obs_loc (Loc.v "y");
            Prog.Obs_reg (1, Reg.v "t1_r1"); Prog.Obs_reg (2, Reg.v "t2_r1") ]
        [ Prog.thread 1 c1; Prog.thread 2 c2 ])
    (gen_thread 1) (gen_thread 2)

let report_mismatch prog a b =
  Format.eprintf "@.MISMATCH on:@.";
  List.iter
    (fun th ->
      Format.eprintf "thread %d:@." th.Prog.tid;
      List.iter (fun i -> Format.eprintf "  %s@." (Instr.show i)) th.Prog.code)
    prog.Prog.threads;
  Format.eprintf "explicit-only: %a@.bmc-only: %a@." Behavior.pp
    (Behavior.diff a b) Behavior.pp (Behavior.diff b a)

let qcheck_arm_equiv =
  QCheck.Test.make ~name:"Bmc.run = Axiomatic.run on random programs"
    ~count:400 (QCheck.make gen_prog) (fun prog ->
      let ax = Axiomatic.run prog in
      let bm = Bmc.run prog in
      if Behavior.equal ax bm then true
      else begin
        report_mismatch prog ax bm;
        false
      end)

let qcheck_sc_equiv =
  QCheck.Test.make ~name:"Bmc.run_sc = Sc.run on random programs" ~count:400
    (QCheck.make gen_prog) (fun prog ->
      let sc = Sc.run prog in
      let bm = Bmc.run_sc prog in
      if Behavior.equal sc bm then true
      else begin
        report_mismatch prog sc bm;
        false
      end)

(* ---- fragment boundary and bound semantics ---- *)

let test_unsupported_message () =
  let prog =
    Prog.make ~name:"frag" ~observables:[]
      [ Prog.thread 1 [ Instr.Nop; Instr.Panic ] ]
  in
  match Bmc.run prog with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Bmc.Unsupported msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      let mem needle =
        Alcotest.(check bool)
          (Printf.sprintf "message %S mentions %s" msg needle)
          true (contains msg needle)
      in
      mem "thread 1";
      mem "pc 1"

let test_bound_limited () =
  (* a loop that runs past the default unrolling bound: the verdict must
     be flagged bound-limited, never silently complete *)
  let ri = Reg.v "i" in
  let x = Expr.at "x" in
  let prog =
    Prog.make ~name:"loopy" ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 1
          [ Instr.move ri (Expr.c 0);
            Instr.while_
              Expr.(r ri < c 100)
              [ Instr.store x (Expr.r ri); Instr.move ri Expr.(r ri + c 1) ]
          ]
      ]
  in
  let res = Bmc.check ~mode:Bmc.Sc prog in
  Alcotest.(check bool) "bound-limited" false res.Bmc.complete;
  (* a loop that exits within the bound is complete *)
  let short =
    Prog.make ~name:"shorty" ~observables:[ Prog.Obs_loc (Loc.v "x") ]
      [ Prog.thread 1
          [ Instr.move ri (Expr.c 0);
            Instr.while_
              Expr.(r ri < c 2)
              [ Instr.store x (Expr.r ri); Instr.move ri Expr.(r ri + c 1) ]
          ]
      ]
  in
  Alcotest.(check bool) "within bound is complete" true
    (Bmc.check ~mode:Bmc.Sc short).Bmc.complete

(* ---- codec round-trip ---- *)

let test_codec_roundtrip () =
  let t = List.hd Litmus_suite.all in
  let rm = Bmc.check ~mode:Bmc.Arm t.Litmus.prog in
  let sc = Bmc.check ~mode:Bmc.Sc t.Litmus.prog in
  let s = Cache.Codec.bmc_summary t ~rm ~sc in
  let j = Cache.Codec.bmc_to_json s in
  let s' = Cache.Codec.bmc_of_json j in
  Alcotest.(check string) "prog digest" s.Cache.Codec.b_prog_digest
    s'.Cache.Codec.b_prog_digest;
  Alcotest.(check bool) "rm behaviors" true
    (Behavior.equal s.Cache.Codec.b_rm s'.Cache.Codec.b_rm);
  Alcotest.(check bool) "sc behaviors" true
    (Behavior.equal s.Cache.Codec.b_sc s'.Cache.Codec.b_sc);
  Alcotest.(check bool) "rm_sat preserved" s.Cache.Codec.b_rm_sat
    s'.Cache.Codec.b_rm_sat;
  (* tampering with the behavior set must trip the digest check *)
  let tampered =
    match j with
    | Cache.Json.Obj fields ->
        Cache.Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "rm_digest" then (k, Cache.Json.String "deadbeef")
               else (k, v))
             fields)
    | _ -> Alcotest.fail "bmc payload is not an object"
  in
  match Cache.Codec.bmc_of_json tampered with
  | _ -> Alcotest.fail "tampered payload accepted"
  | exception Cache.Json.Decode _ -> ()

let () =
  Alcotest.run "bmc"
    [ ( "sat",
        [ Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole;
          Alcotest.test_case "assumption cores" `Quick test_unsat_core;
          Alcotest.test_case "random 3-cnf vs brute force" `Quick
            test_random_3cnf ] );
      ( "parity",
        [ Alcotest.test_case "litmus-suite digest parity" `Quick
            test_suite_parity;
          Alcotest.test_case "litmus-suite verdicts" `Quick
            test_suite_verdicts ] );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest qcheck_arm_equiv;
          QCheck_alcotest.to_alcotest qcheck_sc_equiv ] );
      ( "fragment",
        [ Alcotest.test_case "unsupported names thread and pc" `Quick
            test_unsupported_message;
          Alcotest.test_case "bound-limited verdicts" `Quick
            test_bound_limited ] );
      ( "codec",
        [ Alcotest.test_case "bmc payload round-trip" `Quick
            test_codec_roundtrip ] ) ]
