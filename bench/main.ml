(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§2 examples, Table 1, Tables 2+3, Table 4 + Fig. 8,
   Fig. 9, and the §5 certification summary), checks each against the
   paper's reported shape, and times the artifact generators with
   Bechamel (one Test.make per table/figure).

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit

let section title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let check label ok =
  Format.printf "  [%s] %s@." (if ok then "OK" else "FAIL") label;
  ok

let all_ok = ref true
let expect label ok = if not (check label ok) then all_ok := false

(* ------------------------------------------------------------------ *)
(* §2: the RM-behavior examples                                        *)
(* ------------------------------------------------------------------ *)

let litmus_results =
  lazy (List.map Memmodel.Litmus.run Memmodel.Paper_examples.all)

let print_examples () =
  section "Section 2 examples: relaxed-memory bugs invisible on SC";
  Format.printf "%-26s %-10s %-10s %s@." "test" "SC" "RM" "status";
  List.iter
    (fun (r : Memmodel.Litmus.result) ->
      Format.printf "%-26s %-10s %-10s %s@." r.test.prog.Memmodel.Prog.name
        (if r.sc_sat then "reachable" else "no")
        (if r.rm_sat then "reachable" else "no")
        (if r.as_expected then "ok" else "UNEXPECTED"))
    (Lazy.force litmus_results);
  let r7 =
    List.find
      (fun (r : Memmodel.Litmus.result) ->
        r.test.prog.Memmodel.Prog.name = "example7-user-to-kernel")
      (Lazy.force litmus_results)
  in
  expect "every §2 example behaves as the paper describes"
    (List.for_all
       (fun (r : Memmodel.Litmus.result) -> r.as_expected)
       (Lazy.force litmus_results));
  expect "example 7 panics only on RM" (r7.rm_panic && not r7.sc_panic);
  (* Examples 4-6 live on the machine substrate *)
  let e6_bad =
    Machine.Tlb_sim.stale_tlb_possible Machine.Tlb_sim.unmap_no_barrier
  in
  let e6_good =
    not (Machine.Tlb_sim.stale_tlb_possible Machine.Tlb_sim.unmap_with_barrier)
  in
  expect "example 6: stale TLB iff the barrier is missing" (e6_bad && e6_good)

(* ------------------------------------------------------------------ *)
(* Table 1: proof/checker effort breakdown                             *)
(* ------------------------------------------------------------------ *)

let count_loc dir =
  let rec files d =
    if Sys.file_exists d && Sys.is_directory d then
      Array.to_list (Sys.readdir d)
      |> List.concat_map (fun f -> files (Filename.concat d f))
    else if Filename.check_suffix d ".ml" then [ d ]
    else []
  in
  List.fold_left
    (fun acc f ->
      let ic = open_in f in
      let n = ref 0 in
      (try
         while true do
           ignore (input_line ic);
           incr n
         done
       with End_of_file -> ());
      close_in ic;
      acc + !n)
    0 (files dir)

let print_table1 () =
  section "Table 1: effort breakdown (paper: Coq LOC; here: OCaml LOC)";
  let rows =
    [ ( "VRM framework (models + checkers)",
        count_loc "lib/core" + count_loc "lib/memmodel",
        "3.4K Coq" );
      ( "SeKVM satisfies wDRF (corpus + audits)",
        count_loc "lib/sekvm",
        "3.8K Coq" );
      ( "SeKVM substrate + security on SC",
        count_loc "lib/machine",
        "34.2K Coq (original SC proofs)" ) ]
  in
  Format.printf "%-42s %8s   %s@." "component" "LOC" "paper analog";
  List.iter
    (fun (n, loc, paper) -> Format.printf "%-42s %8d   %s@." n loc paper)
    rows;
  expect "all components non-empty (run from the repository root)"
    (List.for_all (fun (_, l, _) -> l > 0) rows)

(* ------------------------------------------------------------------ *)
(* Tables 2 + 3: microbenchmarks                                       *)
(* ------------------------------------------------------------------ *)

let table3 = lazy (Perf.Micro.table3 ())

let print_table3 () =
  section "Table 2+3: microbenchmarks (simulated cycles; shape vs paper)";
  Format.printf "%-12s %-8s %8s %8s %7s %7s@." "bench" "hw" "KVM" "SeKVM"
    "ratio" "paper";
  List.iter
    (fun (r : Perf.Micro.row) ->
      Format.printf "%-12s %-8s %8d %8d %7.2f %7.2f@." r.bench.Perf.Micro.name
        r.hw_name r.kvm_cycles r.sekvm_cycles r.overhead
        (Option.value ~default:nan
           (Perf.Micro.paper_overhead r.bench.Perf.Micro.name r.hw_name)))
    (Lazy.force table3);
  let rows = Lazy.force table3 in
  let ratio name hw =
    (List.find
       (fun (r : Perf.Micro.row) ->
         r.bench.Perf.Micro.name = name && r.hw_name = hw)
       rows)
      .Perf.Micro.overhead
  in
  expect "SeKVM slower than KVM everywhere"
    (List.for_all (fun (r : Perf.Micro.row) -> r.overhead > 1.0) rows);
  expect "m400 overheads much larger than Seattle's (tiny TLB)"
    (List.for_all
       (fun b -> ratio b "m400" > ratio b "seattle" +. 0.3)
       [ "Hypercall"; "I/O Kernel"; "I/O User"; "Virtual IPI" ]);
  expect "Seattle overhead in the paper's 17-28% band (+/- 5%)"
    (List.for_all
       (fun b ->
         let r = ratio b "seattle" in
         r >= 1.12 && r <= 1.33)
       [ "Hypercall"; "I/O Kernel"; "I/O User"; "Virtual IPI" ]);
  expect "m400 overhead around 2x, as measured"
    (List.for_all
       (fun b ->
         let r = ratio b "m400" in
         r >= 1.5 && r <= 2.6)
       [ "Hypercall"; "I/O Kernel"; "I/O User"; "Virtual IPI" ]);
  (* 3-level stage-2 exists to help small-TLB parts: nested misses cost
     fewer memory accesses (the §5.6 motivation) *)
  let t3 = Perf.Micro.table3 ~stage2_levels:3 () in
  let r3 =
    (List.find
       (fun (r : Perf.Micro.row) ->
         r.bench.Perf.Micro.name = "Hypercall" && r.hw_name = "m400")
       t3)
      .Perf.Micro.overhead
  in
  expect "3-level stage-2 reduces m400 overhead" (r3 < ratio "Hypercall" "m400")

(* ------------------------------------------------------------------ *)
(* Table 4 + Figure 8: single-VM application benchmarks                *)
(* ------------------------------------------------------------------ *)

let fig8 = lazy (Perf.App_sim.figure8 ())

let print_fig8 () =
  section "Table 4 + Figure 8: application benchmarks, one VM";
  List.iter
    (fun (w : Perf.Workload.t) ->
      Format.printf "%-10s - %s@." w.name w.description)
    Perf.Workload.all;
  Format.printf "@.%-10s %-8s %-6s %9s %9s %9s@." "workload" "hw" "linux"
    "KVM" "SeKVM" "overhead";
  let pts = Lazy.force fig8 in
  let overheads = ref [] in
  List.iter
    (fun (w : Perf.Workload.t) ->
      List.iter
        (fun hw ->
          List.iter
            (fun v ->
              let find hyp =
                (List.find
                   (fun (p : Perf.App_sim.point) ->
                     p.workload.Perf.Workload.name = w.name
                     && p.hw_name = hw && p.version = v && p.hypervisor = hyp)
                   pts)
                  .Perf.App_sim.normalized_perf
              in
              let kvm = find Perf.Cost_model.Kvm
              and sekvm = find Perf.Cost_model.Sekvm in
              let ov = (kvm /. sekvm) -. 1.0 in
              overheads := ov :: !overheads;
              Format.printf "%-10s %-8s %-6s %9.3f %9.3f %8.1f%%@." w.name hw
                (Perf.App_sim.version_name v) kvm sekvm (ov *. 100.))
            [ Perf.App_sim.V4_18; Perf.App_sim.V5_4 ])
        [ "m400"; "seattle" ])
    Perf.Workload.all;
  expect "worst-case SeKVM overhead vs KVM below 10% (the Fig. 8 claim)"
    (List.for_all (fun ov -> ov < 0.10) !overheads);
  expect "every configuration runs above 75% of native"
    (List.for_all
       (fun (p : Perf.App_sim.point) -> p.normalized_perf > 0.75)
       pts)

(* ------------------------------------------------------------------ *)
(* Figure 9: multi-VM scalability                                      *)
(* ------------------------------------------------------------------ *)

let fig9 = lazy (Perf.Multi_vm.figure9 ())

let print_fig9 () =
  section "Figure 9: 1-32 concurrent VMs on the m400";
  let pts = Lazy.force fig9 in
  Format.printf "%-10s %-6s" "workload" "hyp";
  List.iter
    (fun n -> Format.printf " %7s" (Printf.sprintf "N=%d" n))
    Perf.Multi_vm.vm_counts;
  Format.printf "@.";
  List.iter
    (fun (w : Perf.Workload.t) ->
      List.iter
        (fun hyp ->
          Format.printf "%-10s %-6s" w.name
            (match hyp with
            | Perf.Cost_model.Kvm -> "kvm"
            | Perf.Cost_model.Sekvm -> "sekvm");
          List.iter
            (fun n ->
              let p =
                List.find
                  (fun (p : Perf.Multi_vm.point) ->
                    p.workload.Perf.Workload.name = w.name
                    && p.n_vms = n && p.hypervisor = hyp)
                  pts
              in
              Format.printf " %7.3f" p.Perf.Multi_vm.normalized_perf)
            Perf.Multi_vm.vm_counts;
          Format.printf "@.")
        [ Perf.Cost_model.Kvm; Perf.Cost_model.Sekvm ])
    Perf.Workload.all;
  let series w hyp =
    List.map
      (fun n ->
        (List.find
           (fun (p : Perf.Multi_vm.point) ->
             p.workload.Perf.Workload.name = w
             && p.n_vms = n && p.hypervisor = hyp)
           pts)
          .Perf.Multi_vm.normalized_perf)
      Perf.Multi_vm.vm_counts
  in
  let rec mono = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-9 && mono rest
    | _ -> true
  in
  expect "per-instance performance decreases with VM count"
    (List.for_all
       (fun (w : Perf.Workload.t) ->
         mono (series w.name Perf.Cost_model.Kvm)
         && mono (series w.name Perf.Cost_model.Sekvm))
       Perf.Workload.all);
  expect "SeKVM within 10% of KVM at every VM count (the Fig. 9 claim)"
    (List.for_all
       (fun (w : Perf.Workload.t) ->
         Perf.Multi_vm.worst_gap pts ~workload:w.Perf.Workload.name < 0.10)
       Perf.Workload.all)

(* ------------------------------------------------------------------ *)
(* §4: the framework's theorems, executably                            *)
(* ------------------------------------------------------------------ *)

let print_theorems () =
  section "Section 4: the wDRF theorems, executable";
  (* Theorem 1/2: certified corpus refines; buggy variants don't *)
  let refined =
    List.for_all
      (fun (e : Sekvm.Kernel_progs.entry) ->
        (Vrm.Certificate.audit_program e).Vrm.Certificate.as_expected)
      (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus)
  in
  expect
    "Theorems 1/2: wDRF corpus refines (RM ⊆ SC); seeded bugs produce RM      witnesses"
    refined;
  (* Theorem 4: Example 7's kernel behaviors covered by synthesized Q' *)
  let v =
    Vrm.Theorem4.check
      ~config:{ Memmodel.Promising.default_config with max_promises = 1;
                loop_fuel = 4 }
      { Vrm.Theorem4.kernel_tids = [ 3 ]; user_tids = [ 1; 2 ] }
      Memmodel.Paper_examples.example7.Memmodel.Litmus.prog
  in
  Format.printf "  %a@." Vrm.Theorem4.pp_verdict v;
  expect "Theorem 4: user programs replaceable by SC oracles"
    v.Vrm.Theorem4.holds;
  (* model validation: Promising vs axiomatic on the straight-line corpus *)
  let agree =
    List.for_all
      (fun (t : Memmodel.Litmus.t) ->
        let ax = Memmodel.Axiomatic.run t.Memmodel.Litmus.prog in
        let pr =
          Vrm.Refinement.normals
            (Memmodel.Promising.run
               ~config:{ Memmodel.Promising.default_config with
                         max_promises = 2; cert_depth = 40 }
               t.Memmodel.Litmus.prog)
        in
        Memmodel.Behavior.equal ax pr)
      [ Memmodel.Paper_examples.example1; Memmodel.Paper_examples.mp_dmb;
        Memmodel.Paper_examples.sb; Memmodel.Litmus_suite.wrc_dmb;
        Memmodel.Litmus_suite.isa2; Memmodel.Litmus_suite.w22_plain ]
  in
  expect "Promising executor agrees with the Armv8 axiomatic model" agree;
  (* model hierarchy: SC ⊆ x86-TSO ⊆ Arm on the §2 examples *)
  let hierarchy =
    List.for_all
      (fun (t : Memmodel.Litmus.t) ->
        let p = t.Memmodel.Litmus.prog in
        let n b = Vrm.Refinement.normals b in
        let sc = n (Memmodel.Sc.run p) in
        let tso = n (Memmodel.Tso.run ~fuel:3 p) in
        let arm =
          n
            (Memmodel.Promising.run
               ?config:t.Memmodel.Litmus.rm_config p)
        in
        Memmodel.Behavior.subset sc tso
        && Memmodel.Behavior.subset tso arm)
      [ Memmodel.Paper_examples.example1; Memmodel.Paper_examples.sb;
        Memmodel.Paper_examples.mp_plain ]
  in
  expect "model hierarchy: SC ⊆ x86-TSO ⊆ Arm" hierarchy

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                   *)
(* ------------------------------------------------------------------ *)

let print_ablations () =
  section "Ablations: TLB capacity, stage-2 depth, KServ huge pages";
  (* TLB sweep: where does the m400 "tiny TLB" effect disappear? *)
  let sweep = Perf.Micro.tlb_sweep () in
  Format.printf "hypercall SeKVM/KVM ratio vs TLB capacity (m400-class):@.";
  List.iter (fun (n, r) -> Format.printf "  %5d entries: %5.2fx@." n r) sweep;
  let rec mono = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-9 && mono rest
    | _ -> true
  in
  expect "overhead monotonically falls with TLB capacity" (mono sweep);
  (* stage-2 depth: 3-level cuts the nested-walk cost (§5.6) *)
  let ratio rows name hw =
    (List.find
       (fun (r : Perf.Micro.row) ->
         r.Perf.Micro.bench.Perf.Micro.name = name
         && r.Perf.Micro.hw_name = hw)
       rows)
      .Perf.Micro.overhead
  in
  let l4 = Lazy.force table3 and l3 = Perf.Micro.table3 ~stage2_levels:3 () in
  Format.printf "@.stage-2 depth (m400 hypercall): 4-level %.2fx, 3-level %.2fx@."
    (ratio l4 "Hypercall" "m400") (ratio l3 "Hypercall" "m400");
  expect "3-level stage-2 beats 4-level on the m400"
    (ratio l3 "Hypercall" "m400" < ratio l4 "Hypercall" "m400");
  (* KServ huge pages: the fix the Table 3 discussion points at *)
  let hp = Perf.Micro.table3 ~kserv_hugepages:true () in
  Format.printf "@.KServ stage-2 granule (m400): 4 KB pages vs 2 MB blocks@.";
  List.iter
    (fun b ->
      Format.printf "  %-12s %5.2fx -> %5.2fx@." b (ratio l4 b "m400")
        (ratio hp b "m400"))
    [ "Hypercall"; "I/O Kernel"; "I/O User"; "Virtual IPI" ];
  expect "huge KServ mappings remove the m400 TLB tax"
    (List.for_all
       (fun b -> ratio hp b "m400" < ratio l4 b "m400" -. 0.3)
       [ "Hypercall"; "I/O Kernel"; "I/O User"; "Virtual IPI" ]);
  (* the §6 remark about newer CPUs, as a configuration *)
  let nv b =
    (Perf.Micro.run_one Perf.Cost_model.neoverse_params ~stage2_levels:4 b)
      .Perf.Micro.overhead
  in
  Format.printf "@.modern (Neoverse-class) CPU: SeKVM/KVM ratios@.";
  List.iter
    (fun b -> Format.printf "  %-12s %5.2fx@." b.Perf.Micro.name (nv b))
    Perf.Micro.all;
  expect "a modern large-TLB CPU sits at the dispatch floor"
    (List.for_all (fun b -> nv b < 1.5) Perf.Micro.all)

(* ------------------------------------------------------------------ *)
(* Multi-VM stress: the executable Fig. 9 configuration                *)
(* ------------------------------------------------------------------ *)

let print_stress () =
  section "Multi-VM stress: live KCore under interleaved guest load";
  let s = Vrm.Scenario.stress_run ~n_vms:6 ~rounds:3 () in
  Format.printf
    "%d VMs x %d rounds: %d guest ops, %d stage-2 faults, %d hypercalls,      %d vIPIs@."
    s.Vrm.Scenario.st_vms s.Vrm.Scenario.st_rounds
    s.Vrm.Scenario.st_guest_ops s.Vrm.Scenario.st_s2_faults
    s.Vrm.Scenario.st_hypercalls s.Vrm.Scenario.st_vipis;
  expect "invariants held through every round and teardown"
    (s.Vrm.Scenario.st_invariant_checks = 3);
  (* the Fig. 9 configuration: 32 concurrent VMs on a larger box *)
  let big =
    { Sekvm.Kcore.default_boot_config with
      Sekvm.Kcore.n_pages = 3072;
      s2_pool_pages = 512;
      n_cpus = 8 }
  in
  let s32 = Vrm.Scenario.stress_run ~config:big ~n_vms:32 ~rounds:2 () in
  Format.printf "32 VMs: %d guest ops, %d faults, %d hypercalls@."
    s32.Vrm.Scenario.st_guest_ops s32.Vrm.Scenario.st_s2_faults
    s32.Vrm.Scenario.st_hypercalls;
  expect "32 concurrent VMs (the Fig. 9 maximum) stay invariant-clean"
    (s32.Vrm.Scenario.st_vms = 32)

(* ------------------------------------------------------------------ *)
(* Parallel search: the engine's multicore mode                        *)
(* ------------------------------------------------------------------ *)

let print_parallel () =
  section "Exploration engine: sequential vs parallel search";
  let jobs = min 4 (Domain.recommended_domain_count ()) in
  Format.printf "%-26s %-9s %10s %10s %8s %s@." "program" "model" "seq-ms"
    (Printf.sprintf "par-ms(%d)" jobs) "states" "same-set";
  let row name model (run : jobs:int -> Memmodel.Behavior.t * Memmodel.Engine.stats) =
    let seq_b, seq_s = run ~jobs:1 in
    let par_b, par_s = run ~jobs in
    let same = Memmodel.Behavior.equal seq_b par_b in
    Format.printf "%-26s %-9s %10.2f %10.2f %8d %s@." name model
      (seq_s.Memmodel.Engine.wall_s *. 1000.)
      (par_s.Memmodel.Engine.wall_s *. 1000.)
      seq_s.Memmodel.Engine.visited
      (if same then "yes" else "NO (BUG)");
    same
  in
  let t = Memmodel.Paper_examples.example2_fixed in
  let prog = t.Memmodel.Litmus.prog in
  let config =
    Option.value ~default:Memmodel.Promising.default_config
      t.Memmodel.Litmus.rm_config
  in
  let ok_sc =
    row prog.Memmodel.Prog.name "sc" (fun ~jobs ->
        Memmodel.Sc.run_stats ~jobs prog)
  in
  let ok_rm =
    row prog.Memmodel.Prog.name "promising" (fun ~jobs ->
        Memmodel.Promising.run_stats ~config ~jobs prog)
  in
  expect "parallel search returns the sequential behavior sets"
    (ok_sc && ok_rm)

(* ------------------------------------------------------------------ *)
(* Engine overhaul: interning, POR, work stealing                      *)
(* This section is also the payload of BENCH_engine.json (--json).     *)
(* ------------------------------------------------------------------ *)

let kernel_corpus =
  Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus

let digest_behaviors (b : Memmodel.Behavior.t) : string =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Memmodel.Behavior.pp b))

(* One full kernel-corpus refinement sweep under the given engine
   configuration: wall seconds, total states visited, POR prunes,
   frontier-task counters, certification-cache counters, per-entry wall
   times, and one digest covering every behavior set (so configurations
   can be checked for bit-identical results). Entries are distributed by
   {!Vrm.Refinement.check_many}: a sequential probe phase across the
   corpus, then each valve-firing entry re-run alone with the whole jobs
   budget spent on intra-entry subtree tasks. *)
type sweep = {
  sw_label : string;
  sw_jobs : int;
  sw_wall : float;
  sw_visited : int;
  sw_pruned : int;
  sw_spawned : int;  (* frontier tasks published *)
  sw_stolen : int;  (* frontier tasks claimed cross-domain *)
  sw_cert_calls : int;
  sw_cert_hits : int;
  sw_stripes : int;  (* seen-set stripes (max over runs) *)
  sw_occupancy : int;  (* deepest stripe (max over runs) *)
  sw_lock_waits : int;  (* contended stripe acquisitions *)
  sw_minor_words : int;  (* minor-heap words allocated while exploring *)
  sw_digest : string;
  sw_entries : (string * float) list;  (* per-entry wall seconds *)
}

let refinement_sweep ~label ~jobs ?(por = true) ?(sym = true)
    ?(cert_cache = true) () =
  let specs =
    List.map
      (fun (e : Sekvm.Kernel_progs.entry) ->
        ( e.Sekvm.Kernel_progs.name,
          e.Sekvm.Kernel_progs.prog,
          { e.Sekvm.Kernel_progs.rm_config with
            Memmodel.Promising.cert_cache } ))
      kernel_corpus
  in
  let t0 = Unix.gettimeofday () in
  let results = Vrm.Refinement.check_many ~jobs ~por ~sym specs in
  let wall = Unix.gettimeofday () -. t0 in
  let visited = ref 0 and pruned = ref 0 in
  let spawned = ref 0 and stolen = ref 0 in
  let calls = ref 0 and hits = ref 0 in
  let stripes = ref 0 and occupancy = ref 0 in
  let waits = ref 0 and minor = ref 0 in
  let digests = ref [] and entries = ref [] in
  List.iter
    (fun (name, (v : Vrm.Refinement.verdict)) ->
      let sc = v.Vrm.Refinement.sc_stats
      and rm = v.Vrm.Refinement.rm_stats in
      visited := !visited + sc.Memmodel.Engine.visited + rm.Memmodel.Engine.visited;
      pruned :=
        !pruned + sc.Memmodel.Engine.por_pruned + rm.Memmodel.Engine.por_pruned;
      spawned :=
        !spawned + sc.Memmodel.Engine.tasks_spawned
        + rm.Memmodel.Engine.tasks_spawned;
      stolen :=
        !stolen + sc.Memmodel.Engine.tasks_stolen
        + rm.Memmodel.Engine.tasks_stolen;
      calls := !calls + rm.Memmodel.Engine.cert_calls;
      hits := !hits + rm.Memmodel.Engine.cert_hits;
      stripes :=
        max !stripes
          (max sc.Memmodel.Engine.seen_stripes rm.Memmodel.Engine.seen_stripes);
      occupancy :=
        max !occupancy
          (max sc.Memmodel.Engine.stripe_occupancy
             rm.Memmodel.Engine.stripe_occupancy);
      waits :=
        !waits + sc.Memmodel.Engine.lock_waits + rm.Memmodel.Engine.lock_waits;
      minor :=
        !minor + sc.Memmodel.Engine.minor_words
        + rm.Memmodel.Engine.minor_words;
      entries :=
        (name, sc.Memmodel.Engine.wall_s +. rm.Memmodel.Engine.wall_s)
        :: !entries;
      digests :=
        (digest_behaviors v.Vrm.Refinement.sc
        ^ digest_behaviors v.Vrm.Refinement.rm)
        :: !digests)
    results;
  { sw_label = label;
    sw_jobs = jobs;
    sw_wall = wall;
    sw_visited = !visited;
    sw_pruned = !pruned;
    sw_spawned = !spawned;
    sw_stolen = !stolen;
    sw_cert_calls = !calls;
    sw_cert_hits = !hits;
    sw_stripes = !stripes;
    sw_occupancy = !occupancy;
    sw_lock_waits = !waits;
    sw_minor_words = !minor;
    sw_digest =
      Digest.to_hex (Digest.string (String.concat "|" (List.rev !digests)));
    sw_entries = List.rev !entries }

(* POR on/off per model: states visited, transitions pruned, and
   result equality. The interleaving models (SC, TSO, Promising) sweep
   the litmus corpus; the ownership checker (Pushpull) sweeps the kernel
   corpus, where the verdict — including the exact first violation on
   the buggy entries — must be identical either way. *)
let por_rows () =
  let litmus = Memmodel.Paper_examples.all @ Memmodel.Litmus_suite.all in
  let side name run =
    let on, off, pruned, equal =
      List.fold_left
        (fun (on, off, pruned, equal) (t : Memmodel.Litmus.t) ->
          let b_on, (s_on : Memmodel.Engine.stats) = run ~por:true t in
          let b_off, (s_off : Memmodel.Engine.stats) = run ~por:false t in
          ( on + s_on.Memmodel.Engine.visited,
            off + s_off.Memmodel.Engine.visited,
            pruned + s_on.Memmodel.Engine.por_pruned,
            equal && Memmodel.Behavior.equal b_on b_off ))
        (0, 0, 0, true) litmus
    in
    (name, on, off, pruned, equal)
  in
  let pushpull =
    let on, off, pruned, equal =
      List.fold_left
        (fun (on, off, pruned, equal) (e : Sekvm.Kernel_progs.entry) ->
          let r_on, (s_on : Memmodel.Engine.stats) =
            Memmodel.Pushpull.check_stats ~exempt:e.Sekvm.Kernel_progs.exempt
              ~por:true e.Sekvm.Kernel_progs.prog
          in
          let r_off, (s_off : Memmodel.Engine.stats) =
            Memmodel.Pushpull.check_stats ~exempt:e.Sekvm.Kernel_progs.exempt
              ~por:false e.Sekvm.Kernel_progs.prog
          in
          let same =
            match (r_on, r_off) with
            | Memmodel.Pushpull.Drf_ok a, Memmodel.Pushpull.Drf_ok b ->
                Memmodel.Behavior.equal a b
            | Memmodel.Pushpull.Drf_violation a, Memmodel.Pushpull.Drf_violation b
              ->
                a = b
            | ( Memmodel.Pushpull.Drf_kernel_panic a,
                Memmodel.Pushpull.Drf_kernel_panic b ) ->
                a = b
            | _ -> false
          in
          ( on + s_on.Memmodel.Engine.visited,
            off + s_off.Memmodel.Engine.visited,
            pruned + s_on.Memmodel.Engine.por_pruned,
            equal && same ))
        (0, 0, 0, true) kernel_corpus
    in
    ("pushpull", on, off, pruned, equal)
  in
  [ side "sc" (fun ~por t -> Memmodel.Sc.run_stats ~por t.Memmodel.Litmus.prog);
    side "tso" (fun ~por t ->
        Memmodel.Tso.run_stats ~fuel:3 ~por t.Memmodel.Litmus.prog);
    side "promising" (fun ~por t ->
        Memmodel.Promising.run_stats ?config:t.Memmodel.Litmus.rm_config ~por
          t.Memmodel.Litmus.prog);
    pushpull ]

(* ------------------------------------------------------------------ *)
(* Thread-symmetry reduction: the sym-stress family                    *)
(* ------------------------------------------------------------------ *)

(* N byte-identical vCPUs hammering one lock word and one PTE slot: the
   orbit canonicalization must collapse the N! thread renamings of every
   seen state while landing on bit-identical behavior sets. The
   committed gate: at N=4 both interleaving models cut visited states by
   at least 5x, with POR on in both arms, and the ownership checker
   agrees verdict-for-verdict. *)
let print_symmetry () : Cache.Json.t =
  section "Thread-symmetry reduction: N interchangeable vCPUs";
  Format.printf "%-14s %-9s %9s %9s %8s %8s %8s %s@." "program" "model"
    "sym-on" "sym-off" "ratio" "on-ms" "off-ms" "digests";
  let rows =
    List.concat_map
      (fun (e : Sekvm.Kernel_progs.entry) ->
        let prog = e.Sekvm.Kernel_progs.prog in
        let model name run =
          let b_on, (s_on : Memmodel.Engine.stats) = run ~sym:true in
          let b_off, (s_off : Memmodel.Engine.stats) = run ~sym:false in
          let ratio =
            float_of_int s_off.Memmodel.Engine.visited
            /. float_of_int (max 1 s_on.Memmodel.Engine.visited)
          in
          let eq = Memmodel.Behavior.equal b_on b_off in
          Format.printf "%-14s %-9s %9d %9d %7.1fx %8.2f %8.2f %s@."
            e.Sekvm.Kernel_progs.name name s_on.Memmodel.Engine.visited
            s_off.Memmodel.Engine.visited ratio
            (s_on.Memmodel.Engine.wall_s *. 1000.)
            (s_off.Memmodel.Engine.wall_s *. 1000.)
            (if eq then "equal" else "DIFFER");
          (e.Sekvm.Kernel_progs.name, name, s_on, s_off, ratio, eq)
        in
        [ model "sc" (fun ~sym -> Memmodel.Sc.run_stats ~sym prog);
          model "promising" (fun ~sym ->
              Memmodel.Promising.run_stats
                ~config:e.Sekvm.Kernel_progs.rm_config ~sym prog) ])
      Sekvm.Kernel_progs.sym_corpus
  in
  (* the ownership checker on the same family: verdict parity *)
  let pushpull_equal =
    List.for_all
      (fun (e : Sekvm.Kernel_progs.entry) ->
        let run sym =
          Memmodel.Pushpull.check ~exempt:e.Sekvm.Kernel_progs.exempt
            ~initial_owners:e.Sekvm.Kernel_progs.initial_owners ~sym
            e.Sekvm.Kernel_progs.prog
        in
        match (run true, run false) with
        | Memmodel.Pushpull.Drf_ok a, Memmodel.Pushpull.Drf_ok b ->
            Memmodel.Behavior.equal a b
        | Memmodel.Pushpull.Drf_violation a, Memmodel.Pushpull.Drf_violation b
          ->
            a = b
        | ( Memmodel.Pushpull.Drf_kernel_panic a,
            Memmodel.Pushpull.Drf_kernel_panic b ) ->
            a = b
        | _ -> false)
      Sekvm.Kernel_progs.sym_corpus
  in
  expect "sym on/off behavior sets bit-identical across the family"
    (List.for_all (fun (_, _, _, _, _, eq) -> eq) rows && pushpull_equal);
  expect "every run detected the symmetry group and collapsed states"
    (List.for_all
       (fun (_, _, (s : Memmodel.Engine.stats), _, _, _) ->
         s.Memmodel.Engine.sym_groups > 0
         && s.Memmodel.Engine.sym_collapsed > 0)
       rows);
  let min_ratio_n4 =
    List.fold_left
      (fun acc (name, _, _, _, ratio, _) ->
        if name = "sym-stress-4" then min acc ratio else acc)
      infinity rows
  in
  Format.printf "  N=4 minimum state-cut ratio across models: %.2fx@."
    min_ratio_n4;
  expect "at N=4 every model cuts visited states by at least 5x"
    (min_ratio_n4 >= 5.);
  Cache.Json.Obj
    [ ( "rows",
        Cache.Json.List
          (List.map
             (fun ( name,
                    model,
                    (s_on : Memmodel.Engine.stats),
                    (s_off : Memmodel.Engine.stats),
                    ratio,
                    eq ) ->
               Cache.Json.Obj
                 [ ("name", Cache.Json.String name);
                   ("model", Cache.Json.String model);
                   ("visited_sym", Cache.Json.Int s_on.Memmodel.Engine.visited);
                   ( "visited_nosym",
                     Cache.Json.Int s_off.Memmodel.Engine.visited );
                   ("ratio", Cache.Json.Float ratio);
                   ( "wall_s_sym",
                     Cache.Json.Float s_on.Memmodel.Engine.wall_s );
                   ( "wall_s_nosym",
                     Cache.Json.Float s_off.Memmodel.Engine.wall_s );
                   ( "sym_groups",
                     Cache.Json.Int s_on.Memmodel.Engine.sym_groups );
                   ( "sym_collapsed",
                     Cache.Json.Int s_on.Memmodel.Engine.sym_collapsed );
                   ("digest_equal", Cache.Json.Bool eq) ])
             rows) );
      ("pushpull_equal", Cache.Json.Bool pushpull_equal);
      ("min_ratio_n4", Cache.Json.Float min_ratio_n4) ]

let print_engine ?(emit_json = false) ?bmc ?sym () =
  section "Exploration engine: frontier scheduler, POR oracle, cert cache";
  (* kernel-corpus refinement sweeps: the frontier scheduler at 1/2/4
     domains (probe phase corpus-wide, commit phase intra-entry), and
     the same sweep with the POR oracle disabled at 1 and 4 domains —
     every configuration must land on one behavior digest. *)
  let sweep label jobs ?por ?sym ?cert_cache () =
    let s = refinement_sweep ~label ~jobs ?por ?sym ?cert_cache () in
    Format.printf
      "  %-26s %8.3f s %9d states %7d pruned %6d tasks (%d stolen)@." label
      s.sw_wall s.sw_visited s.sw_pruned s.sw_spawned s.sw_stolen;
    s
  in
  let ws1 = sweep "frontier jobs=1" 1 () in
  let ws2 = sweep "frontier jobs=2" 2 () in
  let ws4 = sweep "frontier jobs=4" 4 () in
  let np1 = sweep "por off jobs=1" 1 ~por:false () in
  let np4 = sweep "por off jobs=4" 4 ~por:false () in
  let ns1 = sweep "sym off jobs=1" 1 ~sym:false () in
  let speedup_vs_seq = ws1.sw_wall /. ws4.sw_wall in
  let domains = Domain.recommended_domain_count () in
  Format.printf "  speedup at jobs=4 vs sequential: %.2fx (%d domains)@."
    speedup_vs_seq domains;
  (* scaling verdict: with at least 4 hardware threads, the jobs=4 sweep
     must beat sequential by 1.3x. On smaller machines every domain
     multiplexes onto the same cores and the comparison would be vacuous,
     so the verdict is recorded as "skipped" — deliberately distinct from
     "true" so downstream checks can tell "passed" from "not measured".
     The digests below remain the correctness gate either way. *)
  let scaling_verdict =
    if domains < 4 then "skipped"
    else if speedup_vs_seq >= 1.3 then "true"
    else "false"
  in
  (match scaling_verdict with
  | "false" ->
      Format.printf
        "  *** WARNING: PARALLEL SCALING BELOW THRESHOLD: jobs=4 speedup \
         %.2fx < 1.30x on a %d-domain machine ***@."
        speedup_vs_seq domains;
      Format.printf
        "  *** the frontier scheduler is not paying for itself; check \
         BENCH_entries.json for the dominating entries ***@."
  | "skipped" ->
      Format.printf
        "  (scaling check skipped: %d hardware domains < 4)@." domains
  | _ -> ());
  expect
    "all sweep configurations (jobs, POR, sym) produce bit-identical       behavior sets"
    (List.for_all
       (fun s -> s.sw_digest = ws1.sw_digest)
       [ ws2; ws4; np1; np4; ns1 ]);
  expect "POR prunes transitions on the kernel corpus" (ws1.sw_pruned > 0);
  (* seen-set internals at jobs=4: stripe spread, contention, allocation *)
  Format.printf
    "  seen set (jobs=4): %d stripes, deepest %d keys, %d contended           acquisitions, %.1f M minor words@."
    ws4.sw_stripes ws4.sw_occupancy ws4.sw_lock_waits
    (float_of_int ws4.sw_minor_words /. 1e6);
  expect "seen-set stripes populated and occupancy sane"
    (ws4.sw_stripes > 0 && ws4.sw_occupancy > 0
    && ws4.sw_occupancy <= ws4.sw_visited);
  (* certification memoization: the same sequential sweep with the cert
     cache disabled — behavior digests must be bit-identical, and the
     cached run must answer at least half its certification queries from
     the cache for the memoization to carry its weight. *)
  let nc =
    refinement_sweep ~label:"cert-cache off (jobs=1)" ~jobs:1
      ~cert_cache:false ()
  in
  let cert_ratio =
    if ws1.sw_cert_calls = 0 then 0.
    else float_of_int ws1.sw_cert_hits /. float_of_int ws1.sw_cert_calls
  in
  Format.printf
    "  cert cache: %d/%d queries memoized (%.0f%%); sweep %.3f s cached \
     vs %.3f s uncached@."
    ws1.sw_cert_hits ws1.sw_cert_calls (cert_ratio *. 100.) ws1.sw_wall
    nc.sw_wall;
  expect "cert-cache on/off behavior digests are bit-identical"
    (nc.sw_digest = ws1.sw_digest);
  expect "cert cache answers at least half the certification queries"
    (cert_ratio >= 0.5);
  (* the POR oracle, per model *)
  let por = por_rows () in
  List.iter
    (fun (name, on, off, pruned, equal) ->
      Format.printf
        "  POR %-9s: %8d states (exact %8d), %6d pruned, results %s@."
        name on off pruned
        (if equal then "equal" else "DIFFER"))
    por;
  expect "POR strictly reduces visited states and preserves results"
    (List.for_all (fun (_, on, off, _, equal) -> on < off && equal) por);
  expect "POR prunes under Promising and Pushpull (the model-generic oracle)"
    (List.for_all
       (fun model ->
         match List.find_opt (fun (n, _, _, _, _) -> n = model) por with
         | Some (_, _, _, pruned, _) -> pruned > 0
         | None -> false)
       [ "promising"; "pushpull" ]);
  (* state-key microbenchmark: legacy string keys vs interned hashes *)
  let keyprog =
    (List.hd kernel_corpus).Sekvm.Kernel_progs.prog
  in
  let legacy_s, interned_s, sample =
    Memmodel.Promising.key_microbench ~iters:200 keyprog
  in
  Format.printf
    "  state keys (%d states x 200): string %.4f s, interned %.4f s         (%.1fx)@."
    sample legacy_s interned_s
    (legacy_s /. interned_s);
  expect "key microbench sampled states" (sample > 0);
  if emit_json then begin
    let j =
      Cache.Json.Obj
        ([ ("schema", Cache.Json.String "vrm-bench-engine/5");
          ("engine_version", Cache.Json.String Memmodel.Engine.version);
          ( "refinement_sweep",
            Cache.Json.List
              (List.map
                 (fun s ->
                   Cache.Json.Obj
                     [ ("label", Cache.Json.String s.sw_label);
                       ("jobs", Cache.Json.Int s.sw_jobs);
                       ("wall_s", Cache.Json.Float s.sw_wall);
                       ("visited", Cache.Json.Int s.sw_visited);
                       ("por_pruned", Cache.Json.Int s.sw_pruned);
                       ("tasks_spawned", Cache.Json.Int s.sw_spawned);
                       ("tasks_stolen", Cache.Json.Int s.sw_stolen);
                       ("cert_calls", Cache.Json.Int s.sw_cert_calls);
                       ("cert_hits", Cache.Json.Int s.sw_cert_hits);
                       ("seen_stripes", Cache.Json.Int s.sw_stripes);
                       ("stripe_occupancy", Cache.Json.Int s.sw_occupancy);
                       ("lock_waits", Cache.Json.Int s.sw_lock_waits);
                       ("minor_words", Cache.Json.Int s.sw_minor_words);
                       ("digest", Cache.Json.String s.sw_digest) ])
                 [ ws1; ws2; ws4; np1; np4; ns1 ]) );
          ("speedup_jobs4_vs_seq", Cache.Json.Float speedup_vs_seq);
          ("domains", Cache.Json.Int domains);
          ("scaling_ok", Cache.Json.String scaling_verdict);
          ( "cert_cache",
            Cache.Json.Obj
              [ ("cert_calls", Cache.Json.Int ws1.sw_cert_calls);
                ("cert_hits", Cache.Json.Int ws1.sw_cert_hits);
                ("hit_ratio", Cache.Json.Float cert_ratio);
                ("wall_s_cached", Cache.Json.Float ws1.sw_wall);
                ("wall_s_uncached", Cache.Json.Float nc.sw_wall);
                ( "digest_equal_on_off",
                  Cache.Json.Bool (nc.sw_digest = ws1.sw_digest) ) ] );
          ( "por",
            Cache.Json.Obj
              (List.map
                 (fun (name, on, off, pruned, equal) ->
                   ( name,
                     Cache.Json.Obj
                       [ ("visited_por", Cache.Json.Int on);
                         ("visited_exact", Cache.Json.Int off);
                         ("pruned", Cache.Json.Int pruned);
                         ("results_equal", Cache.Json.Bool equal) ] ))
                 por) );
          ( "key_microbench",
            Cache.Json.Obj
              [ ("sample_states", Cache.Json.Int sample);
                ("legacy_s", Cache.Json.Float legacy_s);
                ("interned_s", Cache.Json.Float interned_s);
                ( "speedup",
                  Cache.Json.Float (legacy_s /. interned_s) ) ] ) ]
        @ (match sym with Some s -> [ ("symmetry", s) ] | None -> [])
        @ match bmc with Some b -> [ ("bmc", b) ] | None -> [])
    in
    let text = Cache.Json.to_string j in
    let oc = open_out "BENCH_engine.json" in
    output_string oc text;
    output_char oc '\n';
    close_out oc;
    (* self-validate: the file must round-trip through the strict parser *)
    let ic = open_in "BENCH_engine.json" in
    let len = in_channel_length ic in
    let body = really_input_string ic len in
    close_in ic;
    (match Cache.Json.of_string (String.trim body) with
    | Ok j' ->
        expect "BENCH_engine.json round-trips bit-identically"
          (Cache.Json.to_string j' = text)
    | Error e -> expect ("BENCH_engine.json parses: " ^ e) false);
    Format.printf "  wrote BENCH_engine.json@.";
    (* per-entry timing artifact (uploaded by CI, not committed): one
       wall time per corpus entry per sweep configuration *)
    let entries_j =
      Cache.Json.Obj
        [ ("schema", Cache.Json.String "vrm-bench-entries/2");
          ("engine_version", Cache.Json.String Memmodel.Engine.version);
          ( "sweeps",
            Cache.Json.List
              (List.map
                 (fun s ->
                   Cache.Json.Obj
                     [ ("label", Cache.Json.String s.sw_label);
                       ("jobs", Cache.Json.Int s.sw_jobs);
                       ("wall_s", Cache.Json.Float s.sw_wall);
                       ( "entries",
                         Cache.Json.List
                           (List.map
                              (fun (name, w) ->
                                Cache.Json.Obj
                                  [ ("name", Cache.Json.String name);
                                    ("wall_s", Cache.Json.Float w) ])
                              s.sw_entries) ) ])
                 [ ws1; ws2; ws4; np1; np4; ns1; nc ]) ) ]
    in
    let oc = open_out "BENCH_entries.json" in
    output_string oc (Cache.Json.to_string entries_j);
    output_char oc '\n';
    close_out oc;
    Format.printf "  wrote BENCH_entries.json@."
  end

(* ------------------------------------------------------------------ *)
(* BMC backend: SAT-based decision vs explicit enumeration             *)
(* ------------------------------------------------------------------ *)

(* N writer threads all storing 1 to [x], one reader loading [x] twice.
   The explicit SC enumerator's state space grows as ~2^N (same-location
   writes conflict, so POR cannot commute them), while the behavior set
   is always the same 3 outcomes — (r0,r1) ∈ {(0,0),(0,1),(1,1)};
   (1,0) is forbidden by coherence. The SAT backend's work scales with
   the number of observationally distinct models, not interleavings, so
   it finishes in milliseconds at any N. *)
let bmc_family n =
  let x = Memmodel.Expr.at "x" in
  let r0 = Memmodel.Reg.v "r0" and r1 = Memmodel.Reg.v "r1" in
  let writers =
    List.init n (fun i ->
        Memmodel.Prog.thread (i + 2) [ Memmodel.Instr.store x (Memmodel.Expr.c 1) ])
  in
  let reader =
    Memmodel.Prog.thread 1
      [ Memmodel.Instr.load r0 x; Memmodel.Instr.load r1 x ]
  in
  Memmodel.Prog.make
    ~name:(Printf.sprintf "bmc-writers-%d" n)
    ~observables:[ Memmodel.Prog.Obs_reg (1, r0); Memmodel.Prog.Obs_reg (1, r1) ]
    (reader :: writers)

let print_bmc () : Cache.Json.t =
  section "BMC backend: SAT-based decision vs explicit enumeration";
  (* litmus suite: wall time and digest parity, both memory models *)
  let suite = Memmodel.Litmus_suite.all in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let parity = ref true in
  let t_explicit = ref 0. and t_bmc = ref 0. in
  List.iter
    (fun (t : Memmodel.Litmus.t) ->
      let prog = t.Memmodel.Litmus.prog in
      let sc_ref, t1 = time (fun () -> Memmodel.Sc.run prog) in
      let rm_ref, t2 = time (fun () -> Memmodel.Axiomatic.run prog) in
      let sc_bmc, t3 = time (fun () -> Bmc.run_sc prog) in
      let rm_bmc, t4 = time (fun () -> Bmc.run prog) in
      t_explicit := !t_explicit +. t1 +. t2;
      t_bmc := !t_bmc +. t3 +. t4;
      if
        not
          (Memmodel.Behavior.equal sc_ref sc_bmc
          && Memmodel.Behavior.equal rm_ref rm_bmc)
      then begin
        parity := false;
        Format.printf "  DIVERGENCE on %s@." prog.Memmodel.Prog.name
      end)
    suite;
  Format.printf
    "  litmus suite (%d tests, SC + Arm): explicit %.3f s, bmc %.3f s@."
    (List.length suite) !t_explicit !t_bmc;
  expect "BMC and explicit engines agree on every litmus-suite behavior set"
    !parity;
  (* the high-interleaving family: escalate N until the explicit SC
     enumerator blows a 0.5 s budget; BMC must decide that same N
     completely. The state space is ~2^N, so the escalation is
     guaranteed to terminate on any machine. The N writers are
     byte-identical, so thread-symmetry reduction collapses the family
     to O(N) canonical states — run the explicit side with [~sym:false]
     to keep the contrast about enumerating interleavings (the symmetry
     win on this family is measured in its own section). *)
  let budget = 0.5 in
  let rec escalate = function
    | [] -> None
    | n :: rest ->
        let prog = bmc_family n in
        let deadline = Unix.gettimeofday () +. budget in
        let _, (sc_stats : Memmodel.Engine.stats) =
          Memmodel.Sc.run_stats ~deadline ~sym:false prog
        in
        let r = Bmc.check ~mode:Bmc.Sc prog in
        let outcomes = Memmodel.Behavior.cardinal r.Bmc.behaviors in
        Format.printf
          "  N=%-3d explicit: %8d states %s %6.3f s   bmc: %d outcomes \
           %s %6.3f s@."
          n sc_stats.Memmodel.Engine.visited
          (if sc_stats.Memmodel.Engine.budget_hit then "BUDGET-HIT"
           else "complete  ")
          sc_stats.Memmodel.Engine.wall_s outcomes
          (if r.Bmc.complete then "complete" else "bounded")
          r.Bmc.wall_s;
        if sc_stats.Memmodel.Engine.budget_hit then
          Some (n, r.Bmc.complete && outcomes = 3, r.Bmc.wall_s)
        else escalate rest
  in
  let family = escalate [ 14; 18; 22; 26 ] in
  (match family with
  | Some (n, bmc_ok, wall) ->
      expect
        (Printf.sprintf
           "N=%d writers: explicit enumerator exceeds its %.1fs budget; \
            BMC decides it completely (3 outcomes, %.3fs)"
           n budget wall)
        bmc_ok
  | None ->
      expect
        "explicit enumerator exceeds its budget somewhere in the family"
        false);
  Cache.Json.Obj
    [ ("suite_tests", Cache.Json.Int (List.length suite));
      ("suite_parity", Cache.Json.Bool !parity);
      ("suite_wall_s_explicit", Cache.Json.Float !t_explicit);
      ("suite_wall_s_bmc", Cache.Json.Float !t_bmc);
      ( "family",
        match family with
        | Some (n, bmc_ok, wall) ->
            Cache.Json.Obj
              [ ("writers", Cache.Json.Int n);
                ("explicit_budget_s", Cache.Json.Float budget);
                ("explicit_budget_hit", Cache.Json.Bool true);
                ("bmc_complete_3_outcomes", Cache.Json.Bool bmc_ok);
                ("bmc_wall_s", Cache.Json.Float wall) ]
        | None -> Cache.Json.Null ) ]

(* ------------------------------------------------------------------ *)
(* vrmd: the verification service, cold vs warm cache                  *)
(* ------------------------------------------------------------------ *)

let service_corpus () =
  List.map
    (fun (t : Memmodel.Litmus.t) -> Service.Scheduler.Litmus_spec t)
    (Memmodel.Paper_examples.all @ Memmodel.Litmus_suite.all)
  @ List.map
      (fun e -> Service.Scheduler.Refine_spec e)
      (Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus)

let print_service () =
  section "vrmd service: whole-corpus verification, cold vs warm cache";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrmd-bench-%d" (Unix.getpid ()))
  in
  let specs = service_corpus () in
  let round label =
    (* A fresh store on the same directory: the second round starts with
       an empty memory table and is served entirely from disk. *)
    let cache =
      Cache.Store.create ~dir ~engine_version:Memmodel.Engine.version ()
    in
    let sched = Service.Scheduler.create ~workers:4 ~cache () in
    let t0 = Unix.gettimeofday () in
    let tickets = List.map (Service.Scheduler.submit sched) specs in
    let outcomes = List.map (Service.Scheduler.await sched) tickets in
    let wall = Unix.gettimeofday () -. t0 in
    let c = Service.Scheduler.counters sched in
    Service.Scheduler.shutdown sched;
    Format.printf
      "  %-5s %3d jobs in %6.2fs: %d explored states, %d cache hits, %d       misses@."
      label c.Service.Scheduler.submitted wall
      c.Service.Scheduler.engine.Memmodel.Engine.visited
      c.Service.Scheduler.cache_stats.Cache.Store.hits
      c.Service.Scheduler.cache_stats.Cache.Store.misses;
    (outcomes, c)
  in
  let cold, cc = round "cold" in
  let warm, wc = round "warm" in
  (* Third round: same scheduler, corpus submitted twice. The first
     pass promotes every disk entry into the sharded hot tier; the
     second pass must be served entirely from memory (no disk open, no
     checksum). A fresh store per round (above) can never show this —
     its hot tier starts empty — so this is the only round where
     hot_hits can be non-zero. *)
  let hot, hc =
    let cache =
      Cache.Store.create ~dir ~engine_version:Memmodel.Engine.version ()
    in
    let sched = Service.Scheduler.create ~workers:4 ~cache () in
    let pass () =
      let tickets = List.map (Service.Scheduler.submit sched) specs in
      List.map (Service.Scheduler.await sched) tickets
    in
    ignore (pass ());
    let t0 = Unix.gettimeofday () in
    let outcomes = pass () in
    let wall = Unix.gettimeofday () -. t0 in
    let c = Service.Scheduler.counters sched in
    Service.Scheduler.shutdown sched;
    let h = c.Service.Scheduler.hot_stats in
    Format.printf
      "  %-5s %3d jobs in %6.2fs: %d hot hits, %d disk hits, %d evictions \
       (%d/%d resident)@."
      "hot"
      (List.length specs)
      wall h.Cache.Hot.hot_hits h.Cache.Hot.disk_hits h.Cache.Hot.evictions
      h.Cache.Hot.size h.Cache.Hot.capacity;
    (outcomes, c)
  in
  (* remove the temp store before any expectation can bail out *)
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat dir f))
       (Sys.readdir dir);
     Unix.rmdir dir
   with _ -> ());
  let done_payloads outs =
    List.map
      (function
        | Service.Scheduler.Done p, _ -> Cache.Json.to_string p
        | _ -> "(not done)")
      outs
  in
  expect "every corpus job completes on both rounds"
    (List.for_all
       (function Service.Scheduler.Done _, _ -> true | _ -> false)
       (cold @ warm));
  expect "warm round serves the whole corpus from cache (0 states explored)"
    (wc.Service.Scheduler.engine.Memmodel.Engine.visited = 0
    && wc.Service.Scheduler.cache_stats.Cache.Store.hits = List.length specs
    && wc.Service.Scheduler.cache_stats.Cache.Store.misses = 0);
  expect "cold round explored states (the cache was actually empty)"
    (cc.Service.Scheduler.engine.Memmodel.Engine.visited > 0);
  expect "warm payloads are bit-identical to cold payloads"
    (done_payloads cold = done_payloads warm);
  let h = hc.Service.Scheduler.hot_stats in
  expect "hot round pass 2 is served from memory (hot hits = corpus size)"
    (h.Cache.Hot.hot_hits = List.length specs
    && h.Cache.Hot.disk_hits = List.length specs
    && hc.Service.Scheduler.engine.Memmodel.Engine.visited = 0);
  expect "hot-tier payloads are bit-identical to the disk-tier payloads"
    (done_payloads hot = done_payloads warm)

(* ------------------------------------------------------------------ *)
(* Static wDRF lint vs exhaustive refinement check                     *)
(* ------------------------------------------------------------------ *)

let print_lint () =
  section "Static wDRF lint vs exhaustive refinement check";
  let entries =
    Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus
    @ Sekvm.Kernel_progs.boundary_corpus @ Sekvm.Kernel_progs.lint_corpus
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rows =
    List.map
      (fun (e : Sekvm.Kernel_progs.entry) ->
        let a, ta = time (fun () -> Analysis.Driver.analyze e) in
        let v, tv =
          time (fun () ->
              Vrm.Refinement.check ~config:e.Sekvm.Kernel_progs.rm_config
                e.Sekvm.Kernel_progs.prog)
        in
        let served =
          a.Analysis.Driver.a_overall = Analysis.Diag.Pass
          && a.Analysis.Driver.a_refinement = Analysis.Diag.Pass
        in
        Format.printf "  %-22s lint %8.3f ms   explore %9.3f ms   %s@."
          e.Sekvm.Kernel_progs.name (ta *. 1e3) (tv *. 1e3)
          (if served then "static-served" else "dynamic");
        (a, v, served, ta, tv))
      entries
  in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0. rows in
  let tl = total (fun (_, _, _, ta, _) -> ta) in
  let te = total (fun (_, _, _, _, tv) -> tv) in
  let served = List.length (List.filter (fun (_, _, s, _, _) -> s) rows) in
  Format.printf "  %-22s lint %8.3f ms   explore %9.3f ms   (%d/%d static)@."
    "TOTAL" (tl *. 1e3) (te *. 1e3) served (List.length rows);
  expect "lint is cheaper than exhaustive exploration over the corpus"
    (tl < te);
  expect "static refinement Pass implies exploration succeeds (soundness)"
    (List.for_all
       (fun ((a : Analysis.Driver.t), (v : Vrm.Refinement.verdict), _, _, _) ->
         match a.Analysis.Driver.a_refinement with
         | Analysis.Diag.Pass -> v.Vrm.Refinement.holds
         | Analysis.Diag.Fail | Analysis.Diag.Unknown -> true)
       rows);
  expect "some corpus entries are static-served" (served > 0)

(* ------------------------------------------------------------------ *)
(* Analyzer engines: bounded path enumeration vs dataflow fixpoint     *)
(* ------------------------------------------------------------------ *)

(* A family of b independent branch diamonds: the bounded engine
   enumerates 2^b paths, the fixpoint engine visits O(b) CFG nodes. *)
let branchy b =
  let open Memmodel in
  let code =
    List.concat
      (List.init b (fun k ->
           let rk = Reg.v (Printf.sprintf "r%d" k) in
           let base = Printf.sprintf "el2_m%d" k in
           [ Instr.load rk (Expr.at "data");
             Instr.if_
               (Expr.Cmp (Expr.Eq, Expr.r rk, Expr.c 0))
               [ Instr.store (Expr.at ~offset:(Expr.c 0) base) (Expr.c 1) ]
               [ Instr.store (Expr.at ~offset:(Expr.c 0) base) (Expr.c 2) ] ]))
  in
  Prog.make
    ~name:(Printf.sprintf "branchy-%d" b)
    ~observables:[]
    [ Prog.thread 1 code; Prog.thread 2 [ Instr.Nop ] ]

let print_absint () =
  section "Analyzer throughput: bounded path enumeration vs fixpoint";
  let time_n n f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n
  in
  let sizes = [ 4; 6; 8; 10; 12 ] in
  let rows =
    List.map
      (fun b ->
        let prog = branchy b in
        let name = Printf.sprintf "branchy-%d" b in
        let run engine () =
          Analysis.Driver.analyze_prog ~engine ~name prog
        in
        let tf = time_n 20 (run Analysis.Driver.Fixpoint) in
        let tb =
          time_n (if b <= 8 then 5 else 1) (run Analysis.Driver.Bounded)
        in
        Format.printf
          "  %-12s bounded %9.3f ms (%8.1f prog/s)   fixpoint %7.3f ms \
           (%8.1f prog/s)   speedup %7.1fx@."
          name (tb *. 1e3) (1. /. tb) (tf *. 1e3) (1. /. tf) (tb /. tf);
        (b, tb, tf))
      sizes
  in
  let assoc b = List.find (fun (b', _, _) -> b' = b) rows in
  let _, tb_lo, tf_lo = assoc 4 and _, tb_hi, tf_hi = assoc 12 in
  expect "fixpoint is at least 10x faster than bounded at the top size"
    (tb_hi /. tf_hi >= 10.);
  expect "bounded time grows super-linearly in the diamond count"
    (tb_hi /. tb_lo > 50.);
  expect "fixpoint time stays near-linear in the diamond count"
    (tf_hi /. tf_lo < 30.);
  (* engine agreement across all four corpora, modulo the pinned
     bounded blind spots *)
  let entries =
    Sekvm.Kernel_progs.corpus @ Sekvm.Kernel_progs.buggy_corpus
    @ Sekvm.Kernel_progs.boundary_corpus @ Sekvm.Kernel_progs.lint_corpus
  in
  let divergent =
    List.concat_map
      (fun (e : Sekvm.Kernel_progs.entry) ->
        let fx =
          Analysis.Driver.analyze ~engine:Analysis.Driver.Fixpoint e
        in
        let bd = Analysis.Driver.analyze ~engine:Analysis.Driver.Bounded e in
        let pinned =
          Option.value ~default:[]
            (List.assoc_opt e.Sekvm.Kernel_progs.name
               Sekvm.Kernel_progs.lint_divergences)
        in
        List.filter_map
          (fun (p : Analysis.Driver.pass) ->
            let vb =
              Analysis.Driver.pass_verdict bd p.Analysis.Driver.p_name
            in
            if
              vb <> p.Analysis.Driver.p_verdict
              && not (List.mem p.Analysis.Driver.p_name pinned)
            then
              Some
                (e.Sekvm.Kernel_progs.name ^ "/" ^ p.Analysis.Driver.p_name)
            else None)
          fx.Analysis.Driver.a_passes)
      entries
  in
  List.iter (Format.printf "  UNPINNED divergence: %s@.") divergent;
  expect "zero unpinned engine divergences across all four corpora"
    (divergent = [])

(* ------------------------------------------------------------------ *)
(* §5: the certification summary                                       *)
(* ------------------------------------------------------------------ *)

let print_certification () =
  section "Section 5: wDRF certification of SeKVM (one version per geometry)";
  let versions =
    [ { Sekvm.Kernel_progs.linux = "4.18"; stage2_levels = 4 };
      { Sekvm.Kernel_progs.linux = "4.18"; stage2_levels = 3 } ]
  in
  List.iter
    (fun v ->
      let r = Vrm.Certificate.certify v in
      expect
        (Printf.sprintf "wDRF certificate holds for Linux %s (%d-level)"
           v.Sekvm.Kernel_progs.linux v.Sekvm.Kernel_progs.stage2_levels)
        r.Vrm.Certificate.certified)
    versions

(* ------------------------------------------------------------------ *)
(* Bechamel: time the artifact generators                              *)
(* ------------------------------------------------------------------ *)

let bench_tests =
  [ Test.make ~name:"examples-sc-vs-rm (example1 litmus)"
      (Staged.stage (fun () ->
           Memmodel.Litmus.run Memmodel.Paper_examples.example1));
    Test.make ~name:"wdrf-certificate (gen_vmid program audit)"
      (Staged.stage (fun () ->
           Vrm.Certificate.audit_program Sekvm.Kernel_progs.vmid_alloc));
    Test.make ~name:"table3-microbench"
      (Staged.stage (fun () -> Perf.Micro.table3 ()));
    Test.make ~name:"fig8-apps"
      (Staged.stage (fun () -> Perf.App_sim.figure8 ()));
    Test.make ~name:"fig9-multivm"
      (Staged.stage (fun () -> Perf.Multi_vm.figure9 ()));
    Test.make ~name:"table1-loc"
      (Staged.stage (fun () -> ignore (count_loc "lib/core")));
    Test.make ~name:"ablation-tlb-sweep"
      (Staged.stage (fun () -> Perf.Micro.tlb_sweep ()));
    Test.make ~name:"ablation-kserv-hugepages"
      (Staged.stage (fun () -> Perf.Micro.table3 ~kserv_hugepages:true ()));
    Test.make ~name:"axiomatic-model (mp litmus)"
      (Staged.stage (fun () ->
           Memmodel.Axiomatic.run
             Memmodel.Paper_examples.mp_plain.Memmodel.Litmus.prog));
    Test.make ~name:"barrier-synthesis (example 3 repair)"
      (Staged.stage (fun () ->
           Vrm.Synthesis.repair
             ~config:
               { Memmodel.Promising.default_config with max_promises = 1;
                 loop_fuel = 4 }
             Memmodel.Paper_examples.example3_buggy.Memmodel.Litmus.prog));
    Test.make ~name:"substrate: stage-2 map+unmap"
      (let kcore = Sekvm.Kcore.boot Sekvm.Kcore.default_boot_config in
       let vmid = Sekvm.Kcore.register_vm kcore ~cpu:0 in
       let npt = (Sekvm.Kcore.find_vm kcore vmid).Sekvm.Kcore.npt in
       let i = ref 0 in
       Staged.stage (fun () ->
           incr i;
           let ipa = Machine.Page_table.page_va (16 + (!i mod 200)) in
           (match
              Sekvm.Npt.set_s2pt npt ~cpu:0 ~ipa ~pfn:500 ~perms:Machine.Pte.rw
            with
           | Ok () -> ()
           | Error `Already_mapped -> ());
           match Sekvm.Npt.clear_s2pt npt ~cpu:0 ~ipa with
           | Ok () -> ()
           | Error `Not_mapped -> ())) ]

let run_bechamel () =
  section "Bechamel: artifact generator timings";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let stats = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Format.printf "  %-45s %12.1f ns/run@." name est
          | Some _ | None -> Format.printf "  %-45s (no estimate)@." name)
        stats)
    bench_tests

(* ------------------------------------------------------------------ *)

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--json" argv then begin
    (* engine + BMC sections only: write and validate BENCH_engine.json.
       Assertions in this mode are on counts, digests and the BMC/explicit
       budget contrast (which only widens on slower machines) — safe for
       CI smoke runs on noisy machines. *)
    let bmc = print_bmc () in
    let sym = print_symmetry () in
    print_engine ~emit_json:true ~bmc ~sym ();
    section "Summary";
    Format.printf "all shape checks passed: %b@." !all_ok;
    if not !all_ok then exit 1
  end
  else begin
    print_examples ();
    print_table1 ();
    print_table3 ();
    print_fig8 ();
    print_fig9 ();
    print_theorems ();
    print_ablations ();
    print_stress ();
    print_parallel ();
    print_engine ();
    ignore (print_symmetry ());
    ignore (print_bmc ());
    print_service ();
    print_lint ();
    print_absint ();
    print_certification ();
    run_bechamel ();
    section "Summary";
    Format.printf "all shape checks passed: %b@." !all_ok;
    if not !all_ok then exit 1
  end
